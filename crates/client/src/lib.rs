//! Client for the trace-streaming session daemon (`stems-server`).
//!
//! A [`Client`] is one TCP connection speaking the protocol in
//! `docs/WIRE_PROTOCOL.md`: open sessions (each with its own tenant
//! configuration), stream trace chunks into them, read back per-chunk
//! counter snapshots, and collect end-of-stream summaries. The
//! streaming path ([`Client::stream`]) pipelines a bounded window of
//! chunks before reading each snapshot back, so the link stays full
//! without unbounded in-flight work on either side.
//!
//! # Example
//!
//! ```no_run
//! use stems_client::Client;
//! use stems_core::protocol::OpenRequest;
//! use stems_core::{PrefetchConfig, Predictor};
//! use stems_memsim::SystemConfig;
//! use stems_trace::TraceReader;
//!
//! let mut client = Client::connect("127.0.0.1:4909").unwrap();
//! let session = client
//!     .open(&OpenRequest {
//!         system: SystemConfig::default(),
//!         prefetch: PrefetchConfig::default(),
//!         predictor: Predictor::Stems,
//!         invalidations: None,
//!     })
//!     .unwrap();
//! let mut reader = TraceReader::open("db2.trace").unwrap();
//! let (fed, _last) = client.stream(session, &mut reader, 4).unwrap();
//! let summary = client.close(session).unwrap();
//! assert_eq!(summary.accesses_fed, fed);
//! ```

use std::fmt;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use stems_core::protocol::{
    self, ChunkStats, MetricsReply, OpenRequest, Request, Response, SessionSummary,
};
use stems_trace::store::TraceStoreError;
use stems_trace::{Access, TraceReader};
use stems_types::wire::{self, WireError};

pub mod retry;

pub use retry::{FaultStats, ResilientClient, RetryPolicy};

/// Everything that can go wrong on the client side of a connection.
#[derive(Debug)]
pub enum ClientError {
    /// Framing or transport failure.
    Wire(WireError),
    /// The server answered with a typed `Error` response.
    Server {
        /// The session the server's error concerns, when there is one.
        session: Option<u32>,
        /// The server's description.
        message: String,
    },
    /// The server's admission control turned the request away; retry
    /// after the hinted delay (see [`RetryPolicy`]).
    Busy {
        /// The session the rejection concerns, when there is one.
        session: Option<u32>,
        /// The server's suggested retry delay.
        retry_after_ms: u32,
    },
    /// The server answered with a structurally valid response of the
    /// wrong kind for the request in flight.
    UnexpectedResponse {
        /// What the client was waiting for.
        expected: &'static str,
    },
    /// The server closed the connection while a response was expected.
    Disconnected,
    /// Reading the local trace store failed while streaming.
    Trace(TraceStoreError),
}

impl ClientError {
    /// Whether a retry over a fresh connection can plausibly succeed:
    /// transport faults, truncated/corrupted frames, clean disconnects,
    /// and `Busy` rejections are transient; typed server errors and
    /// protocol mismatches are not — with one exception: a server
    /// `Error` carrying [`protocol::FRAMING_ERROR_PREFIX`] reports that
    /// *our* bytes arrived mangled (the fault was in flight, not in the
    /// request), so it retries like a transport fault.
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Wire(e) => e.is_transient(),
            ClientError::Busy { .. } | ClientError::Disconnected => true,
            ClientError::Server { message, .. } => {
                message.starts_with(protocol::FRAMING_ERROR_PREFIX)
            }
            ClientError::UnexpectedResponse { .. } | ClientError::Trace(_) => false,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server {
                session: Some(s),
                message,
            } => {
                write!(f, "server error (session {s}): {message}")
            }
            ClientError::Server {
                session: None,
                message,
            } => {
                write!(f, "server error: {message}")
            }
            ClientError::Busy {
                session: Some(s),
                retry_after_ms,
            } => {
                write!(
                    f,
                    "server busy (session {s}), retry after {retry_after_ms}ms"
                )
            }
            ClientError::Busy {
                session: None,
                retry_after_ms,
            } => {
                write!(f, "server busy, retry after {retry_after_ms}ms")
            }
            ClientError::UnexpectedResponse { expected } => {
                write!(f, "unexpected response (expected {expected})")
            }
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Trace(e) => write!(f, "trace store error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Wire(e) => Some(e),
            ClientError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

impl From<TraceStoreError> for ClientError {
    fn from(e: TraceStoreError) -> Self {
        ClientError::Trace(e)
    }
}

/// What a successful [`Client::resume`] reports back: where the
/// server's journal stands and the session's current counters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResumeInfo {
    /// The server's authoritative last applied sequence number.
    pub last_seq: u64,
    /// Records applied to the session so far.
    pub accesses_fed: u64,
    /// Current counter snapshot.
    pub counters: stems_core::Counters,
}

/// One connection to a `stems-server` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    payload: Vec<u8>,
    frame: Vec<u8>,
    scratch: Vec<u8>,
}

/// Default bound on connection establishment (the OS default can hang
/// for minutes against a blackholed address).
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(10);
/// Default per-read socket deadline applied at connect.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);
/// Default per-write socket deadline applied at connect.
pub const DEFAULT_WRITE_TIMEOUT: Duration = Duration::from_secs(30);

impl Client {
    /// Connects with the default deadlines
    /// ([`DEFAULT_CONNECT_TIMEOUT`], [`DEFAULT_READ_TIMEOUT`],
    /// [`DEFAULT_WRITE_TIMEOUT`]) and performs the hello exchange.
    /// Every timeout is in force before the first byte moves — there
    /// is no window where a dead peer can hang the client.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        Client::connect_with(
            addr,
            DEFAULT_CONNECT_TIMEOUT,
            DEFAULT_READ_TIMEOUT,
            DEFAULT_WRITE_TIMEOUT,
        )
    }

    /// Connects with explicit deadlines: `connect_timeout` bounds
    /// establishment (each resolved address is tried in turn), and the
    /// read/write timeouts are applied to the socket before the hello
    /// exchange, atomically with the connect rather than via a
    /// separate fallible call.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        connect_timeout: Duration,
        read_timeout: Duration,
        write_timeout: Duration,
    ) -> Result<Client, ClientError> {
        let mut last_err: Option<std::io::Error> = None;
        let mut stream = None;
        for candidate in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&candidate, connect_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let stream = match stream {
            Some(s) => s,
            None => {
                return Err(last_err
                    .unwrap_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            "address resolved to nothing",
                        )
                    })
                    .into())
            }
        };
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_write_timeout(Some(write_timeout))?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            payload: Vec::new(),
            frame: Vec::new(),
            scratch: Vec::new(),
        };
        wire::write_hello(&mut client.writer)?;
        client.writer.flush()?;
        wire::read_hello(&mut client.reader)?;
        Ok(client)
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        req.write_to(&mut self.writer, &mut self.frame, &mut self.scratch)?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        self.writer.flush()?;
        match Response::read_from(&mut self.reader, &mut self.payload)? {
            None => Err(ClientError::Disconnected),
            Some(resp) => Ok(resp),
        }
    }

    /// Opens a session with the given tenant configuration, returning
    /// the server-assigned session id.
    pub fn open(&mut self, open: &OpenRequest) -> Result<u32, ClientError> {
        self.send(&Request::Open(Box::new(open.clone())))?;
        match self.read_response()? {
            Response::Opened { session } => Ok(session),
            Response::Busy {
                session,
                retry_after_ms,
            } => Err(ClientError::Busy {
                session,
                retry_after_ms,
            }),
            Response::Error { session, message } => Err(ClientError::Server { session, message }),
            _ => Err(ClientError::UnexpectedResponse { expected: "Opened" }),
        }
    }

    /// Sends one chunk and waits for its counter snapshot — the
    /// unpipelined convenience path. [`Client::stream`] keeps a window
    /// in flight instead.
    pub fn send_chunk(
        &mut self,
        session: u32,
        records: &[Access],
    ) -> Result<ChunkStats, ClientError> {
        self.write_chunk(session, records)?;
        self.read_stats()
    }

    /// Queues one chunk without waiting for its snapshot. Pair with
    /// [`Client::read_stats`]; at most one snapshot is owed per queued
    /// chunk.
    pub fn write_chunk(&mut self, session: u32, records: &[Access]) -> Result<(), ClientError> {
        self.frame.clear();
        protocol::encode_chunk(&mut self.frame, &mut self.scratch, session, records);
        self.writer.write_all(&self.frame)?;
        Ok(())
    }

    /// Queues one *sequenced* chunk ([`Request::SeqChunk`]) without
    /// waiting for its snapshot. Sequenced chunks are what make a
    /// session resumable: the server journals `seq` and skips
    /// retransmits idempotently.
    pub fn write_seq_chunk(
        &mut self,
        session: u32,
        seq: u64,
        records: &[Access],
    ) -> Result<(), ClientError> {
        self.frame.clear();
        protocol::encode_seq_chunk(&mut self.frame, &mut self.scratch, session, seq, records);
        self.writer.write_all(&self.frame)?;
        Ok(())
    }

    /// Queues an already-encoded wire frame verbatim (the retry layer's
    /// resend path: buffered frames go out again byte-identically).
    pub(crate) fn write_frame_bytes(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.writer.write_all(bytes)?;
        Ok(())
    }

    /// Re-attaches to a live session after a reconnect: tells the
    /// server the last sequence number this client saw acknowledged and
    /// gets back the server's authoritative journal position (which can
    /// only be at or ahead of `last_seq`) plus the current counter
    /// snapshot.
    pub fn resume(&mut self, session: u32, last_seq: u64) -> Result<ResumeInfo, ClientError> {
        self.send(&Request::Resume { session, last_seq })?;
        match self.read_response()? {
            Response::Resumed {
                session: _,
                last_seq,
                accesses_fed,
                counters,
            } => Ok(ResumeInfo {
                last_seq,
                accesses_fed,
                counters,
            }),
            Response::Busy {
                session,
                retry_after_ms,
            } => Err(ClientError::Busy {
                session,
                retry_after_ms,
            }),
            Response::Error { session, message } => Err(ClientError::Server { session, message }),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "Resumed",
            }),
        }
    }

    /// Reads one owed counter snapshot (flushing queued chunks first).
    pub fn read_stats(&mut self) -> Result<ChunkStats, ClientError> {
        match self.read_response()? {
            Response::Stats(stats) => Ok(stats),
            Response::Busy {
                session,
                retry_after_ms,
            } => Err(ClientError::Busy {
                session,
                retry_after_ms,
            }),
            Response::Error { session, message } => Err(ClientError::Server { session, message }),
            _ => Err(ClientError::UnexpectedResponse { expected: "Stats" }),
        }
    }

    /// Streams a whole persisted trace into `session`, keeping up to
    /// `window` chunks in flight (clamped to at least 1). Returns the
    /// number of records fed and the last counter snapshot, which
    /// reflects every record because the final snapshots are drained
    /// before returning.
    pub fn stream<R: Read>(
        &mut self,
        session: u32,
        reader: &mut TraceReader<R>,
        window: usize,
    ) -> Result<(u64, Option<ChunkStats>), ClientError> {
        let window = window.max(1);
        let mut in_flight = 0usize;
        let mut fed = 0u64;
        let mut last = None;
        while let Some(chunk) = reader.next_chunk()? {
            if in_flight == window {
                last = Some(self.read_stats()?);
                in_flight -= 1;
            }
            self.write_chunk(session, chunk)?;
            in_flight += 1;
            fed += chunk.len() as u64;
        }
        while in_flight > 0 {
            last = Some(self.read_stats()?);
            in_flight -= 1;
        }
        Ok((fed, last))
    }

    /// Scrapes the server's metrics: the rendered text exposition and,
    /// when `drain_events` is set, the buffered event log as JSON-lines
    /// (draining is destructive on the server side). Safe to call from
    /// a dedicated monitoring connection while other clients stream.
    pub fn metrics(&mut self, drain_events: bool) -> Result<MetricsReply, ClientError> {
        self.send(&Request::Metrics { drain_events })?;
        match self.read_response()? {
            Response::MetricsReply(reply) => Ok(*reply),
            Response::Error { session, message } => Err(ClientError::Server { session, message }),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "MetricsReply",
            }),
        }
    }

    /// Closes a session and returns its finalized summary.
    pub fn close(&mut self, session: u32) -> Result<SessionSummary, ClientError> {
        self.send(&Request::Close { session })?;
        match self.read_response()? {
            Response::Summary(summary) => Ok(*summary),
            Response::Busy {
                session,
                retry_after_ms,
            } => Err(ClientError::Busy {
                session,
                retry_after_ms,
            }),
            Response::Error { session, message } => Err(ClientError::Server { session, message }),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "Summary",
            }),
        }
    }

    /// Asks the server to drain every open session and exit. Returns
    /// the drained sessions' summaries (in session-id order).
    pub fn shutdown_server(&mut self) -> Result<Vec<SessionSummary>, ClientError> {
        self.send(&Request::Shutdown)?;
        let mut summaries = Vec::new();
        loop {
            match self.read_response()? {
                Response::Summary(summary) => summaries.push(*summary),
                Response::ShutdownAck { drained } => {
                    if drained as usize != summaries.len() {
                        return Err(ClientError::UnexpectedResponse {
                            expected: "one summary per drained session",
                        });
                    }
                    return Ok(summaries);
                }
                Response::Error { session, message } => {
                    return Err(ClientError::Server { session, message })
                }
                _ => {
                    return Err(ClientError::UnexpectedResponse {
                        expected: "Summary or ShutdownAck",
                    })
                }
            }
        }
    }
}
