//! LEB128 variable-length integers and zigzag signed mapping.
//!
//! The persistent trace store (`stems-trace::store`) encodes per-chunk
//! columns as delta streams of varints; a future wire protocol for the
//! trace-streaming service will reuse the same primitives, so they live
//! here in the leaf crate rather than inside the store.
//!
//! Encoding is unsigned LEB128: seven payload bits per byte, low bits
//! first, high bit of each byte set while more bytes follow. A `u64`
//! therefore takes 1–10 bytes. Signed values go through the zigzag
//! mapping first so small-magnitude deltas of either sign stay short.
//!
//! # Example
//!
//! ```
//! use stems_types::varint;
//!
//! let mut buf = Vec::new();
//! varint::write_u64(&mut buf, 300);
//! varint::write_i64(&mut buf, -2);
//! let (a, n) = varint::read_u64(&buf).unwrap();
//! assert_eq!((a, n), (300, 2));
//! let (b, m) = varint::read_i64(&buf[n..]).unwrap();
//! assert_eq!((b, m), (-2, 1));
//! ```

/// Longest possible LEB128 encoding of a `u64` (ceil(64 / 7) bytes).
pub const MAX_VARINT_BYTES: usize = 10;

/// Appends the LEB128 encoding of `value` to `out`.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends the zigzag-LEB128 encoding of `value` to `out`.
pub fn write_i64(out: &mut Vec<u8>, value: i64) {
    write_u64(out, zigzag(value));
}

/// Decodes one LEB128 `u64` from the front of `bytes`, returning the
/// value and the number of bytes consumed.
///
/// Returns `None` when `bytes` ends inside the varint, when the
/// encoding runs past [`MAX_VARINT_BYTES`], or when the final byte
/// carries bits beyond the 64th — all three are data corruption for a
/// stream that was written by [`write_u64`].
pub fn read_u64(bytes: &[u8]) -> Option<(u64, usize)> {
    let mut value: u64 = 0;
    for (i, &byte) in bytes.iter().enumerate().take(MAX_VARINT_BYTES) {
        let payload = (byte & 0x7F) as u64;
        // The 10th byte may only contribute the single remaining bit.
        if i == MAX_VARINT_BYTES - 1 && payload > 1 {
            return None;
        }
        value |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Some((value, i + 1));
        }
    }
    None
}

/// Decodes one zigzag-LEB128 `i64` from the front of `bytes` (see
/// [`read_u64`] for the error conditions).
pub fn read_i64(bytes: &[u8]) -> Option<(i64, usize)> {
    let (raw, n) = read_u64(bytes)?;
    Some((unzigzag(raw), n))
}

/// Maps a signed value to an unsigned one with small absolute values
/// staying small: 0, -1, 1, -2, ... become 0, 1, 2, 3, ...
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encodings() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 0);
        assert_eq!(buf, [0x00]);
        buf.clear();
        write_u64(&mut buf, 127);
        assert_eq!(buf, [0x7F]);
        buf.clear();
        write_u64(&mut buf, 128);
        assert_eq!(buf, [0x80, 0x01]);
        buf.clear();
        write_u64(&mut buf, 300);
        assert_eq!(buf, [0xAC, 0x02]);
        buf.clear();
        write_u64(&mut buf, u64::MAX);
        assert_eq!(buf.len(), MAX_VARINT_BYTES);
    }

    #[test]
    fn round_trips_across_magnitudes() {
        let mut buf = Vec::new();
        for shift in 0..64 {
            for delta in [-1i64, 0, 1] {
                let v = (1u64 << shift).wrapping_add(delta as u64);
                buf.clear();
                write_u64(&mut buf, v);
                assert_eq!(read_u64(&buf), Some((v, buf.len())), "u64 {v:#x}");
                let s = v as i64;
                buf.clear();
                write_i64(&mut buf, s);
                assert_eq!(read_i64(&buf), Some((s, buf.len())), "i64 {s}");
            }
        }
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_short() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for v in [i64::MIN, i64::MAX, -12345, 12345] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        let mut buf = Vec::new();
        write_i64(&mut buf, -3);
        assert_eq!(buf.len(), 1, "small negative deltas stay one byte");
    }

    #[test]
    fn truncated_and_overlong_inputs_are_rejected() {
        // Continuation bit set on the final available byte.
        assert_eq!(read_u64(&[0x80]), None);
        assert_eq!(read_u64(&[]), None);
        // 11 continuation bytes: longer than any valid u64 encoding.
        assert_eq!(read_u64(&[0x80; 11]), None);
        // 10th byte carrying more than the single remaining bit.
        let mut overflowing = [0x80u8; 10];
        overflowing[9] = 0x02;
        assert_eq!(read_u64(&overflowing), None);
        // The canonical-maximum encoding still decodes.
        let mut max = [0xFFu8; 10];
        max[9] = 0x01;
        assert_eq!(read_u64(&max), Some((u64::MAX, 10)));
    }
}
