//! Framing layer for the trace-streaming wire protocol.
//!
//! This module owns the two byte-level constructs every connection uses —
//! the connection **hello** and the length-prefixed **message frame** —
//! and nothing else. Typed requests/responses (session open, chunk
//! delivery, stats) live in `stems_core::protocol`; this layer only
//! guarantees that a peer either receives the exact bytes that were sent
//! or gets a typed [`WireError`], never a panic and never silent
//! corruption. The full byte-level spec is `docs/WIRE_PROTOCOL.md`.
//!
//! # Frame shapes
//!
//! The hello is exchanged once per connection, client first:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "STEMSWIR"
//! 8       2     version (u16 LE) — reject-unknown
//! 10      2     flags   (u16 LE) — reject-unknown (must be 0)
//! ```
//!
//! Every subsequent message is:
//!
//! ```text
//! offset  size  field
//! 0       1     kind (u8, protocol-defined)
//! 1       4     payload_len (u32 LE, <= MAX_MESSAGE_PAYLOAD)
//! 5       len   payload
//! 5+len   4     CRC-32 (u32 LE) over bytes [0, 5+len) — header AND payload
//! ```
//!
//! Unlike the trace store (whose CRC covers the payload only), the
//! message CRC covers the kind and length bytes too, so *any*
//! single-byte corruption anywhere in a frame is detected as
//! [`WireError::ChecksumMismatch`] rather than surfacing as a different
//! — possibly valid — message.
//!
//! # Example
//!
//! ```
//! use stems_types::wire;
//!
//! let mut buf = Vec::new();
//! wire::encode_hello(&mut buf);
//! wire::encode_message(&mut buf, 7, b"payload");
//! let consumed = wire::decode_hello(&buf).unwrap();
//! let (kind, payload, _total) = wire::decode_message(&buf[consumed..]).unwrap();
//! assert_eq!((kind, payload), (7, &b"payload"[..]));
//! ```

use crate::crc::{crc32, Crc32};
use std::fmt;
use std::io::{Read, Write};

/// Magic bytes opening every connection.
pub const WIRE_MAGIC: [u8; 8] = *b"STEMSWIR";
/// Current (and only) protocol version.
pub const WIRE_VERSION: u16 = 1;
/// Size of the hello: magic + version + flags.
pub const HELLO_BYTES: usize = 12;
/// Size of a message header: kind + payload length.
pub const MESSAGE_HEADER_BYTES: usize = 5;
/// Fixed per-message overhead: header + trailing CRC.
pub const MESSAGE_OVERHEAD: usize = MESSAGE_HEADER_BYTES + 4;
/// Upper bound on a message payload (64 MiB — matches the trace store's
/// frame bound). A hostile length prefix can make a peer allocate at
/// most this much.
pub const MAX_MESSAGE_PAYLOAD: u32 = 1 << 26;

/// Everything that can go wrong while framing or unframing bytes.
///
/// Every variant is a *typed* rejection of hostile or truncated input —
/// the decoding paths never panic and never return partially-decoded
/// data.
#[derive(Debug)]
pub enum WireError {
    /// The hello did not start with [`WIRE_MAGIC`].
    BadMagic {
        /// The eight bytes actually read.
        got: [u8; 8],
    },
    /// The hello carried a version this implementation does not speak.
    UnsupportedVersion {
        /// The version actually read.
        got: u16,
    },
    /// The hello carried flag bits this implementation does not know.
    UnsupportedFlags {
        /// The flags actually read.
        got: u16,
    },
    /// The stream ended inside a hello or message.
    Truncated {
        /// Which construct was being read.
        context: &'static str,
    },
    /// A message declared a payload longer than [`MAX_MESSAGE_PAYLOAD`].
    Oversized {
        /// The declared payload length.
        len: u32,
    },
    /// The message CRC did not match the received bytes.
    ChecksumMismatch {
        /// CRC stored in the frame.
        stored: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
    /// A structurally valid frame carried a kind byte the protocol layer
    /// does not define (reported by `stems_core::protocol`, not here).
    UnknownKind {
        /// The kind byte actually read.
        kind: u8,
    },
    /// A structurally valid frame carried a payload the protocol layer
    /// could not decode (reported by `stems_core::protocol`, not here).
    Corrupt(&'static str),
    /// The underlying transport failed.
    Io(std::io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic { got } => {
                write!(f, "bad wire magic {:02x?} (expected \"STEMSWIR\")", got)
            }
            WireError::UnsupportedVersion { got } => {
                write!(f, "unsupported wire version {got} (speak {WIRE_VERSION})")
            }
            WireError::UnsupportedFlags { got } => {
                write!(f, "unsupported wire flags {got:#06x} (must be 0)")
            }
            WireError::Truncated { context } => {
                write!(f, "stream truncated inside {context}")
            }
            WireError::Oversized { len } => {
                write!(
                    f,
                    "message payload of {len} bytes exceeds the {MAX_MESSAGE_PAYLOAD}-byte bound"
                )
            }
            WireError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "message checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            WireError::UnknownKind { kind } => write!(f, "unknown message kind {kind:#04x}"),
            WireError::Corrupt(what) => write!(f, "corrupt message payload: {what}"),
            WireError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl WireError {
    /// A short, stable, lowercase identifier for this error's variant —
    /// the `kind` label on the server's `stems_wire_errors_total`
    /// metric and the `wire_error` observability event. Stable across
    /// releases so dashboards keyed on it do not break.
    pub fn kind_name(&self) -> &'static str {
        match self {
            WireError::BadMagic { .. } => "bad_magic",
            WireError::UnsupportedVersion { .. } => "unsupported_version",
            WireError::UnsupportedFlags { .. } => "unsupported_flags",
            WireError::Truncated { .. } => "truncated",
            WireError::Oversized { .. } => "oversized",
            WireError::ChecksumMismatch { .. } => "checksum_mismatch",
            WireError::UnknownKind { .. } => "unknown_kind",
            WireError::Corrupt(_) => "corrupt",
            WireError::Io(_) => "io",
        }
    }

    /// Whether a fresh connection could plausibly succeed where this
    /// error occurred — the retry classifier used by the client's
    /// fault-tolerance layer (`docs/FAULT_TOLERANCE.md`).
    ///
    /// Transport damage (`Io`, `Truncated`, `ChecksumMismatch`, and
    /// `Oversized` — the length prefix is consulted *before* the
    /// checksum can vouch for it, so a flipped length bit surfaces
    /// here) is transient: the bytes were hurt in flight, not wrong at
    /// the source. Everything else (`BadMagic`, version/flags mismatch,
    /// `UnknownKind`, `Corrupt`) means the *peer* speaks a different
    /// protocol or sent garbage that checksummed clean — reconnecting
    /// to the same peer reproduces it.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            WireError::Io(_)
                | WireError::Truncated { .. }
                | WireError::ChecksumMismatch { .. }
                | WireError::Oversized { .. }
        )
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Appends the 12-byte hello to `out`.
pub fn encode_hello(out: &mut Vec<u8>) {
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
}

/// Validates a hello at the front of `bytes`, returning the number of
/// bytes consumed ([`HELLO_BYTES`]).
pub fn decode_hello(bytes: &[u8]) -> Result<usize, WireError> {
    if bytes.len() < HELLO_BYTES {
        return Err(WireError::Truncated { context: "hello" });
    }
    let mut magic = [0u8; 8];
    magic.copy_from_slice(&bytes[..8]);
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic { got: magic });
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { got: version });
    }
    let flags = u16::from_le_bytes([bytes[10], bytes[11]]);
    if flags != 0 {
        return Err(WireError::UnsupportedFlags { got: flags });
    }
    Ok(HELLO_BYTES)
}

/// Appends one framed message (`kind` + `payload`) to `out`.
///
/// # Panics
///
/// If `payload` exceeds [`MAX_MESSAGE_PAYLOAD`] — callers build payloads
/// and are expected to chunk below the bound.
pub fn encode_message(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    assert!(
        payload.len() <= MAX_MESSAGE_PAYLOAD as usize,
        "message payload of {} bytes exceeds the wire bound",
        payload.len()
    );
    let start = out.len();
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Decodes one framed message from the front of `bytes`.
///
/// Returns `(kind, payload, total_bytes_consumed)`. The payload slice
/// borrows from `bytes`; the CRC has already been verified over the
/// header and payload.
pub fn decode_message(bytes: &[u8]) -> Result<(u8, &[u8], usize), WireError> {
    if bytes.len() < MESSAGE_HEADER_BYTES {
        return Err(WireError::Truncated {
            context: "message header",
        });
    }
    let kind = bytes[0];
    let len = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]);
    if len > MAX_MESSAGE_PAYLOAD {
        return Err(WireError::Oversized { len });
    }
    let len = len as usize;
    let total = MESSAGE_OVERHEAD + len;
    if bytes.len() < total {
        return Err(WireError::Truncated {
            context: "message body",
        });
    }
    let covered = MESSAGE_HEADER_BYTES + len;
    let stored = u32::from_le_bytes([
        bytes[covered],
        bytes[covered + 1],
        bytes[covered + 2],
        bytes[covered + 3],
    ]);
    let computed = crc32(&bytes[..covered]);
    if stored != computed {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    Ok((kind, &bytes[MESSAGE_HEADER_BYTES..covered], total))
}

/// Writes the hello to a transport.
pub fn write_hello<W: Write>(w: &mut W) -> Result<(), WireError> {
    let mut buf = Vec::with_capacity(HELLO_BYTES);
    encode_hello(&mut buf);
    w.write_all(&buf)?;
    Ok(())
}

/// Reads and validates the hello from a transport.
pub fn read_hello<R: Read>(r: &mut R) -> Result<(), WireError> {
    let mut buf = [0u8; HELLO_BYTES];
    read_full(r, &mut buf, "hello")?;
    decode_hello(&buf).map(|_| ())
}

/// Writes one framed message to a transport.
///
/// `scratch` is reused across calls to keep steady-state streaming
/// allocation-free; it is cleared on entry.
pub fn write_message<W: Write>(
    w: &mut W,
    kind: u8,
    payload: &[u8],
    scratch: &mut Vec<u8>,
) -> Result<(), WireError> {
    scratch.clear();
    encode_message(scratch, kind, payload);
    w.write_all(scratch)?;
    Ok(())
}

/// Reads one framed message from a transport into `payload`.
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed the
/// connection *between* messages); a stream that ends mid-frame is
/// [`WireError::Truncated`]. On `Ok(Some(kind))` the verified payload is
/// in `payload` (cleared and refilled each call).
pub fn read_message<R: Read>(r: &mut R, payload: &mut Vec<u8>) -> Result<Option<u8>, WireError> {
    let mut header = [0u8; MESSAGE_HEADER_BYTES];
    if !read_full_or_eof(r, &mut header, "message header")? {
        return Ok(None);
    }
    let kind = header[0];
    let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]);
    if len > MAX_MESSAGE_PAYLOAD {
        return Err(WireError::Oversized { len });
    }
    payload.clear();
    payload.resize(len as usize, 0);
    read_full(r, payload, "message body")?;
    let mut crc_bytes = [0u8; 4];
    read_full(r, &mut crc_bytes, "message checksum")?;
    let stored = u32::from_le_bytes(crc_bytes);
    // The CRC covers header + payload as one span; the incremental
    // hasher folds the two separately-buffered pieces without copying
    // them together.
    let mut h = Crc32::new();
    h.update(&header);
    h.update(payload);
    let computed = h.finish();
    if stored != computed {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    Ok(Some(kind))
}

/// Reads exactly `buf.len()` bytes or returns [`WireError::Truncated`].
fn read_full<R: Read>(r: &mut R, buf: &mut [u8], context: &'static str) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(WireError::Truncated { context }),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// Like [`read_full`], but a clean EOF *before the first byte* returns
/// `Ok(false)` instead of an error — the peer hung up between frames.
fn read_full_or_eof<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    context: &'static str,
) -> Result<bool, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => return Err(WireError::Truncated { context }),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trips() {
        let mut buf = Vec::new();
        encode_hello(&mut buf);
        assert_eq!(buf.len(), HELLO_BYTES);
        assert_eq!(decode_hello(&buf).unwrap(), HELLO_BYTES);
    }

    #[test]
    fn hello_rejects_bad_magic_version_flags() {
        let mut buf = Vec::new();
        encode_hello(&mut buf);
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            decode_hello(&bad),
            Err(WireError::BadMagic { .. })
        ));
        let mut bad = buf.clone();
        bad[8] = 99;
        assert!(matches!(
            decode_hello(&bad),
            Err(WireError::UnsupportedVersion { got: 99 })
        ));
        let mut bad = buf.clone();
        bad[10] = 1;
        assert!(matches!(
            decode_hello(&bad),
            Err(WireError::UnsupportedFlags { got: 1 })
        ));
        assert!(matches!(
            decode_hello(&buf[..HELLO_BYTES - 1]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn message_round_trips_and_reports_consumed_bytes() {
        let mut buf = Vec::new();
        encode_message(&mut buf, 3, b"abc");
        encode_message(&mut buf, 4, b"");
        let (kind, payload, n) = decode_message(&buf).unwrap();
        assert_eq!((kind, payload), (3, &b"abc"[..]));
        let (kind2, payload2, n2) = decode_message(&buf[n..]).unwrap();
        assert_eq!((kind2, payload2), (4, &b""[..]));
        assert_eq!(n + n2, buf.len());
    }

    #[test]
    fn message_detects_any_single_byte_flip() {
        let mut buf = Vec::new();
        encode_message(&mut buf, 9, b"hello wire");
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x41;
            assert!(decode_message(&bad).is_err(), "flip at {i} went undetected");
        }
    }

    #[test]
    fn message_rejects_oversized_and_truncated() {
        let mut buf = Vec::new();
        encode_message(&mut buf, 1, b"xyz");
        for cut in 0..buf.len() {
            assert!(matches!(
                decode_message(&buf[..cut]),
                Err(WireError::Truncated { .. })
            ));
        }
        let mut bad = buf.clone();
        bad[1..5].copy_from_slice(&(MAX_MESSAGE_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            decode_message(&bad),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn streaming_matches_pure_codec() {
        let mut buf = Vec::new();
        let mut scratch = Vec::new();
        write_hello(&mut buf).unwrap();
        write_message(&mut buf, 5, b"stream me", &mut scratch).unwrap();
        write_message(&mut buf, 6, &[0u8; 1000], &mut scratch).unwrap();

        let mut r = &buf[..];
        read_hello(&mut r).unwrap();
        let mut payload = Vec::new();
        assert_eq!(read_message(&mut r, &mut payload).unwrap(), Some(5));
        assert_eq!(payload, b"stream me");
        assert_eq!(read_message(&mut r, &mut payload).unwrap(), Some(6));
        assert_eq!(payload, vec![0u8; 1000]);
        // Clean EOF between frames.
        assert_eq!(read_message(&mut r, &mut payload).unwrap(), None);
        // Mid-frame EOF is Truncated, not clean.
        let mut r = &buf[..buf.len() - 3];
        read_hello(&mut r).unwrap();
        assert_eq!(read_message(&mut r, &mut payload).unwrap(), Some(5));
        assert!(matches!(
            read_message(&mut r, &mut payload),
            Err(WireError::Truncated { .. })
        ));
    }
}
