//! A dependency-free FxHash-style hasher for the simulator's hot paths.
//!
//! Every predictor table lookup (PHT, PST, AGT, stride, SVB, CMOB/RMOB
//! index) hashes a small integer key; the standard library's default
//! SipHash-1-3 pays for DoS resistance these closed-world simulations
//! never need. [`FxHasher`] is the multiply-xor scheme used by rustc
//! (firefox's original "Fx" hash): one rotate, one xor, one multiply per
//! word — several times faster on 8-byte keys, with distribution that is
//! more than adequate for power-of-two table sizes after the high-bit
//! mixing multiply.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiply constant (derived from pi, as in rustc-hash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast non-cryptographic hasher for small integer-like keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// Hashes a single `u64` key exactly as a fresh [`FxHasher`] fed one
/// `write_u64` would (`(0.rot(5) ^ key) * SEED` collapses to one
/// multiply), without constructing a hasher. Open-addressed tables that
/// key directly on a `u64` (the PST's spatial index) derive their slot
/// from the *high* bits of this value — the multiply pushes the mixed
/// entropy upward, so `hash >> (64 - log2(slots))` spreads sequential
/// keys where the low bits would correlate.
#[inline]
pub fn fx_hash_u64(key: u64) -> u64 {
    key.wrapping_mul(SEED)
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// An [`FxHashMap`] pre-sized for `capacity` entries.
pub fn fx_map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

/// An [`FxHashSet`] pre-sized for `capacity` entries.
pub fn fx_set_with_capacity<T>(capacity: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_key_sensitive() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_ne!(hash_one(42u64), hash_one(43u64));
        assert_ne!(hash_one(0u64), hash_one(1u64));
    }

    #[test]
    fn byte_stream_matches_padding_rules() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0]);
        // Different lengths pad differently only past 8 bytes; the 3- and
        // 5-byte streams both hash as one padded word here, so this just
        // pins the padding rule down.
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u64, u64> = fx_map_with_capacity(16);
        for i in 0..1000u64 {
            m.insert(i, i * 3);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&999], 2997);
        let mut s: FxHashSet<u64> = fx_set_with_capacity(16);
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn fx_hash_u64_matches_the_hasher() {
        for key in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(fx_hash_u64(key), hash_one(key));
        }
    }

    #[test]
    fn high_bit_spread_over_pow2_slots() {
        // Open-addressed tables take their slot from the top bits:
        // sequential keys must not collapse into few slots there either.
        let mut buckets = [0u32; 64];
        for i in 0..64_000u64 {
            buckets[(fx_hash_u64(i) >> 58) as usize] += 1;
        }
        let (min, max) = buckets
            .iter()
            .fold((u32::MAX, 0), |(lo, hi), &b| (lo.min(b), hi.max(b)));
        assert!(min > 500 && max < 1500, "min {min} max {max}");
    }

    #[test]
    fn low_bit_spread_over_pow2_buckets() {
        // Sequential keys must not collapse into few power-of-two buckets.
        let mut buckets = [0u32; 64];
        for i in 0..64_000u64 {
            buckets[(hash_one(i) & 63) as usize] += 1;
        }
        let (min, max) = buckets
            .iter()
            .fold((u32::MAX, 0), |(lo, hi), &b| (lo.min(b), hi.max(b)));
        assert!(min > 500 && max < 1500, "min {min} max {max}");
    }
}
