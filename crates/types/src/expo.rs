//! Text helpers for the Prometheus-style metrics exposition format.
//!
//! One sample is one line: `name{label="value",...} value`. These
//! helpers own the two fiddly parts — label-value escaping and number
//! formatting — so every producer (the `stems-obs` registry, the
//! server's scrape handler) renders byte-identical lines. The format
//! itself is documented in `docs/OBSERVABILITY.md`.
//!
//! # Example
//!
//! ```
//! use stems_types::expo;
//!
//! let mut out = String::new();
//! expo::write_sample(&mut out, "stems_chunks_total", &[("session", "3")], 42.0);
//! assert_eq!(out, "stems_chunks_total{session=\"3\"} 42\n");
//! ```

use std::fmt::Write;

/// Appends a label value with exposition escaping: backslash, double
/// quote, and newline become `\\`, `\"`, and `\n`.
pub fn write_escaped_label_value(out: &mut String, value: &str) {
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

/// Appends a sample value: integral values print without a decimal
/// point (counters stay exact and diff-friendly), fractional values
/// print with three decimals.
pub fn write_value(out: &mut String, value: f64) {
    if value.fract() == 0.0 && value.abs() < 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", value as i64);
    } else {
        let _ = write!(out, "{value:.3}");
    }
}

/// Appends one complete exposition line: `name{labels} value\n`. The
/// brace block is omitted when `labels` is empty.
pub fn write_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            write_escaped_label_value(out, v);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    write_value(out, value);
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_sample_has_no_brace_block() {
        let mut out = String::new();
        write_sample(&mut out, "stems_accesses_total", &[], 7.0);
        assert_eq!(out, "stems_accesses_total 7\n");
    }

    #[test]
    fn labels_render_in_order_with_escaping() {
        let mut out = String::new();
        write_sample(
            &mut out,
            "m",
            &[("tenant", "a\"b\\c\nd"), ("predictor", "STeMS")],
            1.0,
        );
        assert_eq!(out, "m{tenant=\"a\\\"b\\\\c\\nd\",predictor=\"STeMS\"} 1\n");
    }

    #[test]
    fn values_format_integral_and_fractional() {
        let mut out = String::new();
        write_value(&mut out, 123456789.0);
        assert_eq!(out, "123456789");
        out.clear();
        write_value(&mut out, 0.5);
        assert_eq!(out, "0.500");
        out.clear();
        write_value(&mut out, -3.0);
        assert_eq!(out, "-3");
    }
}
