//! CRC-32 (IEEE 802.3), the checksum used by every binary format in the
//! workspace.
//!
//! Both the persistent trace store (`docs/TRACE_FORMAT.md`) and the wire
//! protocol (`docs/WIRE_PROTOCOL.md`) terminate their length-prefixed
//! payloads with this checksum, so the implementation lives here in the
//! leaf crate. The polynomial is the reflected `0xEDB88320`; the check
//! value for `"123456789"` is `0xCBF43926`.

const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) over one contiguous
/// slice. Table-driven; the table is built in a const context so the
/// hot loop is one lookup per byte.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// Incremental CRC-32 over a sequence of slices.
///
/// `Crc32::new()` → [`update`](Crc32::update) in any split →
/// [`finish`](Crc32::finish) produces exactly what [`crc32`] returns
/// over the concatenation; the wire codec uses this to checksum a
/// message header and its separately-buffered payload without copying
/// them together.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Crc32 { state: u32::MAX }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finalizes and returns the checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_contiguous_at_every_split() {
        let data = b"split me anywhere and the checksum must not care";
        let whole = crc32(data);
        for cut in 0..=data.len() {
            let mut h = Crc32::new();
            h.update(&data[..cut]);
            h.update(&data[cut..]);
            assert_eq!(h.finish(), whole, "split at {cut}");
        }
    }
}
