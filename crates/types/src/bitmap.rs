//! A flat `u64`-word bitmap over a fixed range of slot indices.
//!
//! The reconstruction window (PR 5) showed that a word-packed occupancy
//! bitmap beats per-slot `Option` state for probe-heavy tables: a
//! membership test is one mask-and-shift against a cache-dense word
//! array. [`FlatBitmap`] packages that idiom for the open-addressed PST's
//! occupancy and tombstone planes (and any future power-of-two table),
//! where the alternative — a per-slot state byte — would triple the
//! probe loop's touched bytes.

/// A fixed-size bitmap addressed by slot index.
///
/// # Example
///
/// ```
/// use stems_types::FlatBitmap;
///
/// let mut b = FlatBitmap::new(128);
/// b.set(3);
/// b.set(127);
/// assert!(b.get(3) && b.get(127) && !b.get(4));
/// b.clear(3);
/// assert!(!b.get(3));
/// ```
#[derive(Clone, Debug, Default)]
pub struct FlatBitmap {
    words: Vec<u64>,
}

impl FlatBitmap {
    /// A zeroed bitmap covering `bits` slots (rounded up to a whole word).
    pub fn new(bits: usize) -> Self {
        FlatBitmap {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    /// Clears every bit, keeping the allocation.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Resizes to cover `bits` slots with every bit cleared.
    pub fn reset(&mut self, bits: usize) {
        self.words.clear();
        self.words.resize(bits.div_ceil(64), 0);
    }

    /// The raw 64-bit word holding bits `i * 64 .. i * 64 + 64`, for
    /// word-at-a-time scans (e.g. the reconstruction window's set-bit
    /// drain walk).
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        self.words[i]
    }

    /// Number of set bits (diagnostics; O(words)).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_round_trip() {
        let mut b = FlatBitmap::new(200);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 199] {
            assert!(!b.get(i));
            b.set(i);
            assert!(b.get(i));
        }
        assert_eq!(b.count(), 8);
        b.clear(64);
        assert!(!b.get(64) && b.get(63) && b.get(65));
        b.clear_all();
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn reset_resizes_and_zeroes() {
        let mut b = FlatBitmap::new(64);
        b.set(5);
        b.reset(256);
        assert_eq!(b.count(), 0);
        b.set(255);
        assert!(b.get(255));
        b.reset(64);
        assert_eq!(b.count(), 0);
        assert!(!b.get(63));
    }

    #[test]
    fn sizes_round_up_to_whole_words() {
        let b = FlatBitmap::new(1);
        assert!(!b.get(63)); // slot range extends through the word
        let b = FlatBitmap::new(65);
        assert!(!b.get(127));
    }
}
