//! Fundamental value types shared by every crate in the STeMS reproduction.
//!
//! The paper ("Spatio-Temporal Memory Streaming", ISCA 2009) works at three
//! granularities:
//!
//! * **byte addresses** ([`Addr`]) as produced by the processor,
//! * **cache blocks** ([`BlockAddr`], 64 bytes) — the unit of caching,
//!   coherence, and prefetching,
//! * **spatial regions** ([`RegionAddr`], 2KB = 32 blocks) — the unit over
//!   which spatial patterns are learned.
//!
//! This crate defines newtypes for those granularities plus the small
//! mechanisms reused everywhere: saturating counters ([`SatCounter`]),
//! 32-bit spatial bit patterns ([`SpatialPattern`]), and ordered spatial
//! sequences ([`SpatialSequence`]) with reconstruction deltas.
//!
//! # Example
//!
//! ```
//! use stems_types::{Addr, BLOCK_BYTES, REGION_BLOCKS};
//!
//! let a = Addr::new(0x1_2345);
//! let block = a.block();
//! let region = a.region();
//! assert_eq!(block.region(), region);
//! assert!(block.offset_in_region().get() < REGION_BLOCKS as u8);
//! assert_eq!(region.base().get() % (BLOCK_BYTES * REGION_BLOCKS as u64), 0);
//! ```

pub mod addr;
pub mod bitmap;
pub mod clock;
pub mod counter;
pub mod crc;
pub mod expo;
pub mod hash;
pub mod pattern;
pub mod sequence;
pub mod smallvec;
pub mod varint;
pub mod wire;

pub use addr::{Addr, BlockAddr, BlockOffset, Pc, RegionAddr};
pub use bitmap::FlatBitmap;
pub use counter::SatCounter;
pub use hash::{
    fx_hash_u64, fx_map_with_capacity, fx_set_with_capacity, FxBuildHasher, FxHashMap, FxHashSet,
    FxHasher,
};
pub use pattern::SpatialPattern;
pub use sequence::{Delta, SeqEntry, SequenceArena, SpatialSequence};
pub use smallvec::{FetchList, SmallVec};

/// Bytes per cache block (64B, Table 1).
pub const BLOCK_BYTES: u64 = 64;
/// log2 of [`BLOCK_BYTES`].
pub const BLOCK_SHIFT: u32 = 6;
/// Cache blocks per spatial region (32, Section 2.4).
pub const REGION_BLOCKS: usize = 32;
/// Bytes per spatial region (2KB, Section 2.4).
pub const REGION_BYTES: u64 = BLOCK_BYTES * REGION_BLOCKS as u64;
/// log2 of [`REGION_BYTES`].
pub const REGION_SHIFT: u32 = 11;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(1u64 << BLOCK_SHIFT, BLOCK_BYTES);
        assert_eq!(1u64 << REGION_SHIFT, REGION_BYTES);
        assert_eq!(REGION_BYTES / BLOCK_BYTES, REGION_BLOCKS as u64);
    }
}
