//! Caller-supplied time sources for observability instrumentation.
//!
//! Latency histograms need *some* notion of time, but the simulation
//! itself must stay deterministic and tests must not depend on wall
//! time. The [`Clock`] trait decouples the two: instrumented code asks
//! an injected clock for nanoseconds, production wiring hands it a
//! [`MonotonicClock`], and tests hand it a [`ManualClock`] they advance
//! explicitly — so a latency test asserts exact bucket placement
//! instead of sleeping and hoping.
//!
//! # Example
//!
//! ```
//! use stems_types::clock::{Clock, ManualClock, MonotonicClock};
//!
//! let manual = ManualClock::new();
//! manual.advance_nanos(1_500);
//! assert_eq!(manual.now_nanos(), 1_500);
//!
//! let mono = MonotonicClock::new();
//! let a = mono.now_nanos();
//! assert!(mono.now_nanos() >= a);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond source. Implementations must be cheap and
/// thread-safe: instrumented hot paths read the clock around every
/// chunk.
pub trait Clock {
    /// Nanoseconds elapsed since some fixed origin (implementation
    /// defined; only differences are meaningful).
    fn now_nanos(&self) -> u64;
}

/// A shareable clock handle: one clock is typically shared by a server
/// and every per-tenant hook it creates.
pub type SharedClock = Arc<dyn Clock + Send + Sync>;

/// Wall-clock-backed [`Clock`]: nanoseconds since the clock was
/// constructed, via [`Instant`] (monotonic, immune to wall-clock
/// adjustments).
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        // Saturates at u64::MAX after ~584 years of uptime.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A [`Clock`] tests drive by hand: time only moves when the test says
/// so, making latency observations exactly reproducible.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock stopped at zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Moves the clock forward by `delta` nanoseconds.
    pub fn advance_nanos(&self, delta: u64) {
        self.nanos.fetch_add(delta, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute nanosecond value.
    pub fn set_nanos(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_when_told() {
        let c = ManualClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance_nanos(10);
        c.advance_nanos(5);
        assert_eq!(c.now_nanos(), 15);
        c.set_nanos(3);
        assert_eq!(c.now_nanos(), 3);
    }

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = MonotonicClock::new();
        let mut prev = c.now_nanos();
        for _ in 0..100 {
            let now = c.now_nanos();
            assert!(now >= prev);
            prev = now;
        }
    }

    #[test]
    fn clocks_share_through_the_trait_object() {
        let shared: SharedClock = Arc::new(ManualClock::new());
        let a = Arc::clone(&shared);
        a.now_nanos();
    }
}
