//! Saturating counters.
//!
//! Section 4.3 replaces SMS's pattern bit vectors with vectors of 2-bit
//! saturating counters, one per block: hysteresis lets the history learn the
//! *stable* part of each pattern while filtering unstable accesses, halving
//! overpredictions at the same coverage.

use core::fmt;

/// An n-state saturating counter with a configurable prediction threshold.
///
/// `MAX` is the saturation value (inclusive); a 2-bit counter uses
/// `SatCounter<3>`. A counter *predicts taken* when its value is at or above
/// the threshold supplied to [`SatCounter::predicts`].
///
/// # Example
///
/// ```
/// use stems_types::SatCounter;
///
/// let mut c: SatCounter<3> = SatCounter::new(0);
/// c.increment();
/// c.increment();
/// assert!(c.predicts(2));
/// c.decrement();
/// assert!(!c.predicts(2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SatCounter<const MAX: u8>(u8);

impl<const MAX: u8> SatCounter<MAX> {
    /// Creates a counter at `value`, clamped to `MAX`.
    pub fn new(value: u8) -> Self {
        SatCounter(value.min(MAX))
    }

    /// Current value (always `<= MAX`).
    pub const fn get(self) -> u8 {
        self.0
    }

    /// Increments, saturating at `MAX`.
    pub fn increment(&mut self) {
        if self.0 < MAX {
            self.0 += 1;
        }
    }

    /// Decrements, saturating at zero.
    pub fn decrement(&mut self) {
        self.0 = self.0.saturating_sub(1);
    }

    /// Whether the counter is at or above `threshold`.
    pub const fn predicts(self, threshold: u8) -> bool {
        self.0 >= threshold
    }

    /// Whether the counter is saturated at `MAX`.
    pub const fn is_saturated(self) -> bool {
        self.0 == MAX
    }
}

impl<const MAX: u8> fmt::Debug for SatCounter<MAX> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SatCounter({}/{})", self.0, MAX)
    }
}

impl<const MAX: u8> fmt::Display for SatCounter<MAX> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The paper's 2-bit saturating counter (values 0..=3, predict at >= 2).
pub type Counter2 = SatCounter<3>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_at_both_ends() {
        let mut c: SatCounter<3> = SatCounter::new(0);
        c.decrement();
        assert_eq!(c.get(), 0);
        for _ in 0..10 {
            c.increment();
        }
        assert_eq!(c.get(), 3);
        assert!(c.is_saturated());
    }

    #[test]
    fn new_clamps() {
        let c: SatCounter<3> = SatCounter::new(250);
        assert_eq!(c.get(), 3);
    }

    #[test]
    fn hysteresis_requires_two_misses_to_flip() {
        // A saturated counter still predicts after one non-occurrence.
        let mut c: SatCounter<3> = SatCounter::new(3);
        c.decrement();
        assert!(c.predicts(2));
        c.decrement();
        assert!(!c.predicts(2));
    }
}
