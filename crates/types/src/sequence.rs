//! Ordered spatial sequences with reconstruction deltas.
//!
//! STeMS's key data structure (Section 3.1, Figure 3): instead of SMS's bit
//! vector, a region's history records the *order* in which blocks were first
//! accessed, and for each block a **delta** — the number of global misses
//! interleaved between the previous element of this sequence and this one.
//! Given the trigger sequence and the per-region spatial sequences, the
//! original total miss order can be reconstructed (Figure 5).
//!
//! Each stored element also carries a 2-bit saturating counter (Section 4.3)
//! so the pattern sequence table learns the stable part of each pattern.

use core::fmt;

use crate::{BlockOffset, SatCounter, SpatialPattern, REGION_BLOCKS};

/// Initial value for a newly inserted element's 2-bit counter.
///
/// Starting one below the prediction threshold means an element must be
/// observed twice before it is predicted: stable pattern elements cross
/// the threshold after one retrain (the index is shared by many regions,
/// so this costs almost no coverage), while one-off noise offsets never
/// get predicted — the hysteresis that halves overpredictions
/// (Section 4.3).
pub const COUNTER_INIT: u8 = 1;

/// Counter value at or above which an element is predicted.
pub const PREDICT_THRESHOLD: u8 = 2;

/// A reconstruction delta: the number of global misses skipped between the
/// previous element of a sequence and this element (Figure 3).
///
/// Stored in 8 bits in hardware (Section 4.3); values saturate at 255.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Delta(u8);

impl Delta {
    /// Zero delta — the element immediately follows its predecessor.
    pub const ZERO: Delta = Delta(0);

    /// Creates a delta, saturating at 255 as the 8-bit hardware field would.
    pub fn from_gap(gap: usize) -> Self {
        Delta(gap.min(u8::MAX as usize) as u8)
    }

    /// Raw value.
    pub const fn get(self) -> u8 {
        self.0
    }
}

impl fmt::Debug for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Delta({})", self.0)
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u8> for Delta {
    fn from(raw: u8) -> Self {
        Delta(raw)
    }
}

/// One element of a spatial sequence: a block offset, its reconstruction
/// delta, and the 2-bit confidence counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SeqEntry {
    /// Block offset within the 2KB region.
    pub offset: BlockOffset,
    /// Misses skipped since the previous element of this sequence.
    pub delta: Delta,
    /// 2-bit hysteresis counter (Section 4.3).
    pub counter: SatCounter<3>,
}

/// The ordered access sequence of one spatial region.
///
/// Elements appear in order of *first access* within a generation; an
/// offset can appear at most once (Section 4.3). Used both for observed
/// generations (in the active generation table) and for trained history
/// (in the pattern sequence table).
///
/// # Example
///
/// ```
/// use stems_types::{BlockOffset, Delta, SpatialSequence};
///
/// // Region A from Figure 3: offsets +4, +2, -1 → we store unsigned
/// // in-region offsets; deltas record interleaving gaps.
/// let mut seq = SpatialSequence::new();
/// seq.push(BlockOffset::new(4), Delta::from_gap(0));
/// seq.push(BlockOffset::new(2), Delta::from_gap(1));
/// assert_eq!(seq.len(), 2);
/// assert!(!seq.push(BlockOffset::new(4), Delta::ZERO)); // only once
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct SpatialSequence {
    entries: Vec<SeqEntry>,
    present: SpatialPattern,
}

impl SpatialSequence {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        SpatialSequence {
            entries: Vec::new(),
            present: SpatialPattern::empty(),
        }
    }

    /// Appends `offset` with `delta` if not already present.
    ///
    /// Returns `true` if the element was inserted; `false` if the offset was
    /// already recorded (a block only appears once, at its first access).
    pub fn push(&mut self, offset: BlockOffset, delta: Delta) -> bool {
        if self.present.contains(offset) {
            return false;
        }
        self.present.set(offset);
        self.entries.push(SeqEntry {
            offset,
            delta,
            counter: SatCounter::new(COUNTER_INIT),
        });
        true
    }

    /// Number of elements (at most 32).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `offset` is present.
    pub fn contains(&self, offset: BlockOffset) -> bool {
        self.present.contains(offset)
    }

    /// The element for `offset`, if present.
    pub fn get(&self, offset: BlockOffset) -> Option<&SeqEntry> {
        if !self.present.contains(offset) {
            return None;
        }
        self.entries.iter().find(|e| e.offset == offset)
    }

    /// Position of `offset` in first-access order, if present.
    pub fn position(&self, offset: BlockOffset) -> Option<usize> {
        if !self.present.contains(offset) {
            return None;
        }
        self.entries.iter().position(|e| e.offset == offset)
    }

    /// Elements in first-access order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &SeqEntry> {
        self.entries.iter()
    }

    /// The set of present offsets as a bit pattern (what SMS would store).
    pub fn pattern(&self) -> SpatialPattern {
        self.present
    }

    /// Elements whose counter meets [`PREDICT_THRESHOLD`], in order.
    pub fn predicted(&self) -> impl Iterator<Item = &SeqEntry> {
        self.entries
            .iter()
            .filter(|e| e.counter.predicts(PREDICT_THRESHOLD))
    }

    /// The predicted offsets as a bit pattern.
    pub fn predicted_pattern(&self) -> SpatialPattern {
        self.predicted().map(|e| e.offset).collect()
    }

    /// Retrains this (stored) sequence against a newly observed one.
    ///
    /// * offsets in both: counter incremented, order and delta updated to
    ///   the most recent observation;
    /// * offsets only stored: counter decremented, kept at the tail in their
    ///   prior relative order (they decay out of prediction);
    /// * offsets only observed: inserted at [`COUNTER_INIT`].
    ///
    /// The sequence is truncated to 32 elements (one slot per block), which
    /// cannot overflow since offsets are unique.
    pub fn retrain(&mut self, observed: &SpatialSequence) {
        let mut merged: Vec<SeqEntry> = Vec::with_capacity(REGION_BLOCKS);
        self.retrain_into(observed, &mut merged);
    }

    /// [`SpatialSequence::retrain`] through a [`SequenceArena`]: the
    /// merge runs in the arena's scratch buffer and the displaced entry
    /// buffer stays in the arena, so steady-state retraining allocates
    /// nothing.
    pub fn retrain_in(&mut self, observed: &SpatialSequence, arena: &mut SequenceArena) {
        let mut merged = std::mem::take(&mut arena.scratch);
        merged.clear();
        self.retrain_into(observed, &mut merged);
        arena.scratch = merged;
    }

    /// The retrain merge: builds the merged sequence in `merged` (cleared
    /// capacity is reused), then swaps it in, leaving the previous entry
    /// buffer in `merged`.
    fn retrain_into(&mut self, observed: &SpatialSequence, merged: &mut Vec<SeqEntry>) {
        let mut present = SpatialPattern::empty();
        for obs in &observed.entries {
            let counter = match self.get(obs.offset) {
                Some(old) => {
                    let mut c = old.counter;
                    c.increment();
                    c
                }
                None => SatCounter::new(COUNTER_INIT),
            };
            merged.push(SeqEntry {
                offset: obs.offset,
                delta: obs.delta,
                counter,
            });
            present.set(obs.offset);
        }
        for old in &self.entries {
            if !present.contains(old.offset) {
                let mut c = old.counter;
                c.decrement();
                if c.get() > 0 {
                    merged.push(SeqEntry {
                        offset: old.offset,
                        delta: old.delta,
                        counter: c,
                    });
                    present.set(old.offset);
                }
            }
        }
        core::mem::swap(&mut self.entries, merged);
        self.present = present;
    }
}

/// A recycling arena for [`SpatialSequence`] entry buffers.
///
/// STeMS opens a spatial generation on every trigger miss and retires one
/// on every generation end or PST training — at millions of simulated
/// accesses per second that is a constant stream of small `Vec`
/// allocations. The arena keeps retired entry buffers (and the retrain
/// merge scratch) and hands them back to new sequences, so AGT/PST/stream
/// churn performs no steady-state allocation.
///
/// Buffers are plain values moved in and out (`take` transfers ownership,
/// `put` reclaims it), so a pooled buffer can never be aliased by two
/// live sequences; the accounting counters ([`SequenceArena::taken`],
/// [`SequenceArena::returned`], [`SequenceArena::pooled`]) let tests
/// assert the live + pooled population stays bounded under sustained
/// churn.
#[derive(Clone, Debug, Default)]
pub struct SequenceArena {
    free: Vec<Vec<SeqEntry>>,
    /// Merge buffer for [`SpatialSequence::retrain_in`]; holds the
    /// displaced entry buffer between retrains.
    scratch: Vec<SeqEntry>,
    taken: u64,
    returned: u64,
}

/// Spare-list bound: the paper's AGT holds 64 generations and the PST
/// retires at most one victim per insert, so twice the AGT covers every
/// live-plus-retiring sequence without hoarding.
const ARENA_SPARES: usize = 128;

impl SequenceArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty sequence, reusing a pooled entry buffer when available.
    pub fn take(&mut self) -> SpatialSequence {
        self.taken += 1;
        let mut entries = self.free.pop().unwrap_or_default();
        entries.clear();
        SpatialSequence {
            entries,
            present: SpatialPattern::empty(),
        }
    }

    /// Returns a retired sequence's entry buffer to the arena. Buffers
    /// that never allocated, and buffers beyond the spare-list bound, are
    /// dropped rather than hoarded.
    pub fn put(&mut self, seq: SpatialSequence) {
        self.returned += 1;
        if seq.entries.capacity() > 0 && self.free.len() < ARENA_SPARES {
            self.free.push(seq.entries);
        }
    }

    /// Sequences handed out so far.
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// Sequences returned so far.
    pub fn returned(&self) -> u64 {
        self.returned
    }

    /// Sequences taken but not yet returned (live churn population).
    pub fn outstanding(&self) -> u64 {
        self.taken.saturating_sub(self.returned)
    }

    /// Spare entry buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

impl fmt::Debug for SpatialSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpatialSequence[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "({},{},c{})", e.offset, e.delta, e.counter)?;
        }
        write!(f, "]")
    }
}

impl FromIterator<(BlockOffset, Delta)> for SpatialSequence {
    fn from_iter<I: IntoIterator<Item = (BlockOffset, Delta)>>(iter: I) -> Self {
        let mut s = SpatialSequence::new();
        for (o, d) in iter {
            s.push(o, d);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(items: &[(u8, u8)]) -> SpatialSequence {
        items
            .iter()
            .map(|&(o, d)| (BlockOffset::new(o), Delta::from(d)))
            .collect()
    }

    #[test]
    fn push_preserves_first_access_order() {
        let s = seq(&[(4, 0), (2, 1), (31, 1)]);
        let order: Vec<u8> = s.iter().map(|e| e.offset.get()).collect();
        assert_eq!(order, [4, 2, 31]);
        assert_eq!(s.position(BlockOffset::new(2)), Some(1));
        assert_eq!(s.position(BlockOffset::new(9)), None);
    }

    #[test]
    fn duplicate_offsets_are_rejected() {
        let mut s = seq(&[(4, 0)]);
        assert!(!s.push(BlockOffset::new(4), Delta::from(7)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(BlockOffset::new(4)).unwrap().delta.get(), 0);
    }

    #[test]
    fn delta_saturates_like_8bit_hardware_field() {
        assert_eq!(Delta::from_gap(1000).get(), 255);
        assert_eq!(Delta::from_gap(3).get(), 3);
    }

    #[test]
    fn new_entries_need_a_second_sighting_to_predict() {
        let mut s = seq(&[(1, 0), (2, 0)]);
        assert_eq!(s.predicted().count(), 0);
        s.retrain(&seq(&[(1, 0)]));
        let predicted: Vec<u8> = s.predicted().map(|e| e.offset.get()).collect();
        assert_eq!(predicted, [1]);
    }

    #[test]
    fn retrain_increments_shared_and_decays_absent() {
        let mut stored = seq(&[(1, 0), (2, 3), (3, 0)]);
        let observed = seq(&[(2, 1), (1, 0)]);
        stored.retrain(&observed);
        // Order adopts the new observation; offset 3 decayed out.
        let order: Vec<u8> = stored.iter().map(|e| e.offset.get()).collect();
        assert_eq!(order, [2, 1]);
        // Shared offsets got incremented (1 -> 2), delta updated.
        let e2 = stored.get(BlockOffset::new(2)).unwrap();
        assert_eq!(e2.counter.get(), 2);
        assert_eq!(e2.delta.get(), 1);
        // Absent offset decayed to zero and was dropped.
        assert!(stored.get(BlockOffset::new(3)).is_none());
        assert!(!stored.predicted_pattern().contains(BlockOffset::new(3)));
    }

    #[test]
    fn retrain_drops_entries_that_reach_zero() {
        let mut stored = seq(&[(5, 0)]);
        stored.retrain(&seq(&[(5, 0)])); // 5 reinforced to 2
        let empty_obs = seq(&[(6, 0)]);
        stored.retrain(&empty_obs); // 5 decays to 1
        stored.retrain(&empty_obs); // 5 decays to 0 and is dropped
        assert!(!stored.contains(BlockOffset::new(5)));
        assert!(stored.contains(BlockOffset::new(6)));
    }

    #[test]
    fn hysteresis_keeps_stable_block_predicted_through_one_glitch() {
        let mut stored = seq(&[(7, 0)]);
        // Reinforce to saturation.
        stored.retrain(&seq(&[(7, 0)]));
        stored.retrain(&seq(&[(7, 0)]));
        assert!(stored
            .get(BlockOffset::new(7))
            .unwrap()
            .counter
            .is_saturated());
        // One glitch: still predicted.
        stored.retrain(&seq(&[(8, 0)]));
        assert!(stored.predicted_pattern().contains(BlockOffset::new(7)));
        // Second glitch: no longer predicted.
        stored.retrain(&seq(&[(8, 0)]));
        assert!(!stored.predicted_pattern().contains(BlockOffset::new(7)));
    }

    #[test]
    fn pattern_matches_contents() {
        let s = seq(&[(0, 0), (9, 2)]);
        let p = s.pattern();
        assert!(p.contains(BlockOffset::new(0)));
        assert!(p.contains(BlockOffset::new(9)));
        assert_eq!(p.count(), 2);
    }

    #[test]
    fn retrain_in_matches_plain_retrain() {
        let mut arena = SequenceArena::new();
        let mut plain = seq(&[(1, 0), (2, 3), (3, 0)]);
        let mut pooled = seq(&[(1, 0), (2, 3), (3, 0)]);
        for observed in [
            seq(&[(2, 1), (1, 0)]),
            seq(&[(9, 0)]),
            seq(&[(9, 2), (1, 1)]),
            SpatialSequence::new(),
        ] {
            plain.retrain(&observed);
            pooled.retrain_in(&observed, &mut arena);
            assert_eq!(plain, pooled, "arena retrain diverged");
        }
    }

    /// A tiny deterministic generator for the churn test below.
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    /// Arena churn oracle: under random take / put / retrain
    /// interleavings, (1) a buffer handed out is never simultaneously
    /// owned by another live sequence (checked by entry-buffer address
    /// against every live sequence), (2) the arena's accounting matches a
    /// Vec model of the live population exactly, and (3) live + pooled
    /// buffers stay bounded by the high-water mark of the live set —
    /// nothing leaks and nothing is hoarded.
    #[test]
    fn arena_churn_never_aliases_and_stays_bounded() {
        let mut rng = 0x5EED_AE11A;
        let mut arena = SequenceArena::new();
        let mut live: Vec<SpatialSequence> = Vec::new();
        let mut high_water = 0usize;
        for step in 0..20_000u32 {
            match lcg(&mut rng) % 10 {
                // Take a fresh sequence and fill it a little so its
                // buffer allocates.
                0..=3 => {
                    let mut s = arena.take();
                    assert!(s.is_empty(), "recycled sequence not reset");
                    let n = lcg(&mut rng) % 6;
                    for _ in 0..n {
                        s.push(
                            BlockOffset::new((lcg(&mut rng) % 32) as u8),
                            Delta::from_gap(lcg(&mut rng) as usize % 8),
                        );
                    }
                    if s.entries.capacity() > 0 {
                        let ptr = s.entries.as_ptr();
                        for other in live.iter().filter(|o| o.entries.capacity() > 0) {
                            assert_ne!(
                                ptr,
                                other.entries.as_ptr(),
                                "buffer aliased by two live sequences at step {step}"
                            );
                        }
                    }
                    live.push(s);
                }
                // Retire a live sequence.
                4..=7 => {
                    if !live.is_empty() {
                        let i = lcg(&mut rng) as usize % live.len();
                        arena.put(live.swap_remove(i));
                    }
                }
                // Retrain a live sequence against another's contents.
                _ => {
                    if live.len() >= 2 {
                        let i = lcg(&mut rng) as usize % live.len();
                        let j = (i + 1 + lcg(&mut rng) as usize % (live.len() - 1)) % live.len();
                        let observed = live[j].clone();
                        live[i].retrain_in(&observed, &mut arena);
                    }
                }
            }
            high_water = high_water.max(live.len());
            assert_eq!(
                arena.outstanding() as usize,
                live.len(),
                "arena accounting diverged from the live-set model at step {step}"
            );
            assert!(
                arena.pooled() <= high_water.max(1),
                "arena pooled {} buffers but only {} were ever live at once",
                arena.pooled(),
                high_water
            );
            assert!(arena.pooled() <= ARENA_SPARES, "spare list unbounded");
        }
        assert!(arena.taken() > 0 && arena.returned() > 0);
    }
}
