//! Ordered spatial sequences with reconstruction deltas.
//!
//! STeMS's key data structure (Section 3.1, Figure 3): instead of SMS's bit
//! vector, a region's history records the *order* in which blocks were first
//! accessed, and for each block a **delta** — the number of global misses
//! interleaved between the previous element of this sequence and this one.
//! Given the trigger sequence and the per-region spatial sequences, the
//! original total miss order can be reconstructed (Figure 5).
//!
//! Each stored element also carries a 2-bit saturating counter (Section 4.3)
//! so the pattern sequence table learns the stable part of each pattern.

use core::fmt;

use crate::{BlockOffset, SatCounter, SpatialPattern, REGION_BLOCKS};

/// Initial value for a newly inserted element's 2-bit counter.
///
/// Starting one below the prediction threshold means an element must be
/// observed twice before it is predicted: stable pattern elements cross
/// the threshold after one retrain (the index is shared by many regions,
/// so this costs almost no coverage), while one-off noise offsets never
/// get predicted — the hysteresis that halves overpredictions
/// (Section 4.3).
pub const COUNTER_INIT: u8 = 1;

/// Counter value at or above which an element is predicted.
pub const PREDICT_THRESHOLD: u8 = 2;

/// A reconstruction delta: the number of global misses skipped between the
/// previous element of a sequence and this element (Figure 3).
///
/// Stored in 8 bits in hardware (Section 4.3); values saturate at 255.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Delta(u8);

impl Delta {
    /// Zero delta — the element immediately follows its predecessor.
    pub const ZERO: Delta = Delta(0);

    /// Creates a delta, saturating at 255 as the 8-bit hardware field would.
    pub fn from_gap(gap: usize) -> Self {
        Delta(gap.min(u8::MAX as usize) as u8)
    }

    /// Raw value.
    pub const fn get(self) -> u8 {
        self.0
    }
}

impl fmt::Debug for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Delta({})", self.0)
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u8> for Delta {
    fn from(raw: u8) -> Self {
        Delta(raw)
    }
}

/// One element of a spatial sequence: a block offset, its reconstruction
/// delta, and the 2-bit confidence counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SeqEntry {
    /// Block offset within the 2KB region.
    pub offset: BlockOffset,
    /// Misses skipped since the previous element of this sequence.
    pub delta: Delta,
    /// 2-bit hysteresis counter (Section 4.3).
    pub counter: SatCounter<3>,
}

/// The ordered access sequence of one spatial region.
///
/// Elements appear in order of *first access* within a generation; an
/// offset can appear at most once (Section 4.3). Used both for observed
/// generations (in the active generation table) and for trained history
/// (in the pattern sequence table).
///
/// # Example
///
/// ```
/// use stems_types::{BlockOffset, Delta, SpatialSequence};
///
/// // Region A from Figure 3: offsets +4, +2, -1 → we store unsigned
/// // in-region offsets; deltas record interleaving gaps.
/// let mut seq = SpatialSequence::new();
/// seq.push(BlockOffset::new(4), Delta::from_gap(0));
/// seq.push(BlockOffset::new(2), Delta::from_gap(1));
/// assert_eq!(seq.len(), 2);
/// assert!(!seq.push(BlockOffset::new(4), Delta::ZERO)); // only once
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct SpatialSequence {
    entries: Vec<SeqEntry>,
    present: SpatialPattern,
}

impl SpatialSequence {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        SpatialSequence {
            entries: Vec::new(),
            present: SpatialPattern::empty(),
        }
    }

    /// Appends `offset` with `delta` if not already present.
    ///
    /// Returns `true` if the element was inserted; `false` if the offset was
    /// already recorded (a block only appears once, at its first access).
    pub fn push(&mut self, offset: BlockOffset, delta: Delta) -> bool {
        if self.present.contains(offset) {
            return false;
        }
        self.present.set(offset);
        self.entries.push(SeqEntry {
            offset,
            delta,
            counter: SatCounter::new(COUNTER_INIT),
        });
        true
    }

    /// Number of elements (at most 32).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `offset` is present.
    pub fn contains(&self, offset: BlockOffset) -> bool {
        self.present.contains(offset)
    }

    /// The element for `offset`, if present.
    pub fn get(&self, offset: BlockOffset) -> Option<&SeqEntry> {
        if !self.present.contains(offset) {
            return None;
        }
        self.entries.iter().find(|e| e.offset == offset)
    }

    /// Position of `offset` in first-access order, if present.
    pub fn position(&self, offset: BlockOffset) -> Option<usize> {
        if !self.present.contains(offset) {
            return None;
        }
        self.entries.iter().position(|e| e.offset == offset)
    }

    /// Elements in first-access order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &SeqEntry> {
        self.entries.iter()
    }

    /// The set of present offsets as a bit pattern (what SMS would store).
    pub fn pattern(&self) -> SpatialPattern {
        self.present
    }

    /// Elements whose counter meets [`PREDICT_THRESHOLD`], in order.
    pub fn predicted(&self) -> impl Iterator<Item = &SeqEntry> {
        self.entries
            .iter()
            .filter(|e| e.counter.predicts(PREDICT_THRESHOLD))
    }

    /// The predicted offsets as a bit pattern.
    pub fn predicted_pattern(&self) -> SpatialPattern {
        self.predicted().map(|e| e.offset).collect()
    }

    /// Retrains this (stored) sequence against a newly observed one.
    ///
    /// * offsets in both: counter incremented, order and delta updated to
    ///   the most recent observation;
    /// * offsets only stored: counter decremented, kept at the tail in their
    ///   prior relative order (they decay out of prediction);
    /// * offsets only observed: inserted at [`COUNTER_INIT`].
    ///
    /// The sequence is truncated to 32 elements (one slot per block), which
    /// cannot overflow since offsets are unique.
    pub fn retrain(&mut self, observed: &SpatialSequence) {
        let mut merged: Vec<SeqEntry> = Vec::with_capacity(REGION_BLOCKS);
        let mut present = SpatialPattern::empty();
        for obs in &observed.entries {
            let counter = match self.get(obs.offset) {
                Some(old) => {
                    let mut c = old.counter;
                    c.increment();
                    c
                }
                None => SatCounter::new(COUNTER_INIT),
            };
            merged.push(SeqEntry {
                offset: obs.offset,
                delta: obs.delta,
                counter,
            });
            present.set(obs.offset);
        }
        for old in &self.entries {
            if !present.contains(old.offset) {
                let mut c = old.counter;
                c.decrement();
                if c.get() > 0 {
                    merged.push(SeqEntry {
                        offset: old.offset,
                        delta: old.delta,
                        counter: c,
                    });
                    present.set(old.offset);
                }
            }
        }
        self.entries = merged;
        self.present = present;
    }
}

impl fmt::Debug for SpatialSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpatialSequence[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "({},{},c{})", e.offset, e.delta, e.counter)?;
        }
        write!(f, "]")
    }
}

impl FromIterator<(BlockOffset, Delta)> for SpatialSequence {
    fn from_iter<I: IntoIterator<Item = (BlockOffset, Delta)>>(iter: I) -> Self {
        let mut s = SpatialSequence::new();
        for (o, d) in iter {
            s.push(o, d);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(items: &[(u8, u8)]) -> SpatialSequence {
        items
            .iter()
            .map(|&(o, d)| (BlockOffset::new(o), Delta::from(d)))
            .collect()
    }

    #[test]
    fn push_preserves_first_access_order() {
        let s = seq(&[(4, 0), (2, 1), (31, 1)]);
        let order: Vec<u8> = s.iter().map(|e| e.offset.get()).collect();
        assert_eq!(order, [4, 2, 31]);
        assert_eq!(s.position(BlockOffset::new(2)), Some(1));
        assert_eq!(s.position(BlockOffset::new(9)), None);
    }

    #[test]
    fn duplicate_offsets_are_rejected() {
        let mut s = seq(&[(4, 0)]);
        assert!(!s.push(BlockOffset::new(4), Delta::from(7)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(BlockOffset::new(4)).unwrap().delta.get(), 0);
    }

    #[test]
    fn delta_saturates_like_8bit_hardware_field() {
        assert_eq!(Delta::from_gap(1000).get(), 255);
        assert_eq!(Delta::from_gap(3).get(), 3);
    }

    #[test]
    fn new_entries_need_a_second_sighting_to_predict() {
        let mut s = seq(&[(1, 0), (2, 0)]);
        assert_eq!(s.predicted().count(), 0);
        s.retrain(&seq(&[(1, 0)]));
        let predicted: Vec<u8> = s.predicted().map(|e| e.offset.get()).collect();
        assert_eq!(predicted, [1]);
    }

    #[test]
    fn retrain_increments_shared_and_decays_absent() {
        let mut stored = seq(&[(1, 0), (2, 3), (3, 0)]);
        let observed = seq(&[(2, 1), (1, 0)]);
        stored.retrain(&observed);
        // Order adopts the new observation; offset 3 decayed out.
        let order: Vec<u8> = stored.iter().map(|e| e.offset.get()).collect();
        assert_eq!(order, [2, 1]);
        // Shared offsets got incremented (1 -> 2), delta updated.
        let e2 = stored.get(BlockOffset::new(2)).unwrap();
        assert_eq!(e2.counter.get(), 2);
        assert_eq!(e2.delta.get(), 1);
        // Absent offset decayed to zero and was dropped.
        assert!(stored.get(BlockOffset::new(3)).is_none());
        assert!(!stored.predicted_pattern().contains(BlockOffset::new(3)));
    }

    #[test]
    fn retrain_drops_entries_that_reach_zero() {
        let mut stored = seq(&[(5, 0)]);
        stored.retrain(&seq(&[(5, 0)])); // 5 reinforced to 2
        let empty_obs = seq(&[(6, 0)]);
        stored.retrain(&empty_obs); // 5 decays to 1
        stored.retrain(&empty_obs); // 5 decays to 0 and is dropped
        assert!(!stored.contains(BlockOffset::new(5)));
        assert!(stored.contains(BlockOffset::new(6)));
    }

    #[test]
    fn hysteresis_keeps_stable_block_predicted_through_one_glitch() {
        let mut stored = seq(&[(7, 0)]);
        // Reinforce to saturation.
        stored.retrain(&seq(&[(7, 0)]));
        stored.retrain(&seq(&[(7, 0)]));
        assert!(stored
            .get(BlockOffset::new(7))
            .unwrap()
            .counter
            .is_saturated());
        // One glitch: still predicted.
        stored.retrain(&seq(&[(8, 0)]));
        assert!(stored.predicted_pattern().contains(BlockOffset::new(7)));
        // Second glitch: no longer predicted.
        stored.retrain(&seq(&[(8, 0)]));
        assert!(!stored.predicted_pattern().contains(BlockOffset::new(7)));
    }

    #[test]
    fn pattern_matches_contents() {
        let s = seq(&[(0, 0), (9, 2)]);
        let p = s.pattern();
        assert!(p.contains(BlockOffset::new(0)));
        assert!(p.contains(BlockOffset::new(9)));
        assert_eq!(p.count(), 2);
    }
}
