//! An inline small-vector for per-access result lists.
//!
//! [`CoverageSim::step`] reports which blocks the prefetcher fetched
//! during one access. Almost every step fetches zero to a handful of
//! blocks, so returning a `Vec` means a heap allocation per access — the
//! dominant allocator traffic of a trace replay. [`SmallVec`] keeps up to
//! `N` elements inline on the stack and only spills to the heap on the
//! rare burst larger than `N` (deep reconstructions), making the common
//! path allocation-free.
//!
//! [`CoverageSim::step`]: ../stems_core/engine/struct.CoverageSim.html

use crate::BlockAddr;

/// A vector storing up to `N` elements inline, spilling to the heap
/// beyond that.
///
/// # Example
///
/// ```
/// use stems_types::SmallVec;
///
/// let mut v: SmallVec<u64, 4> = SmallVec::new();
/// for i in 0..6 {
///     v.push(i); // first 4 inline, then spills
/// }
/// assert_eq!(v.len(), 6);
/// assert_eq!(&v[..2], &[0, 1]);
/// ```
#[derive(Clone, Debug)]
pub struct SmallVec<T, const N: usize> {
    inline: [T; N],
    len: usize,
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> SmallVec<T, N> {
    /// Creates an empty vector (no heap allocation).
    pub fn new() -> Self {
        SmallVec {
            inline: [T::default(); N],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the contents have spilled to the heap.
    pub fn spilled(&self) -> bool {
        self.len > N
    }

    /// Appends an element. The first `N` pushes after a `clear` are
    /// allocation-free; push `N+1` moves the inline prefix to the heap.
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.inline[self.len] = value;
        } else {
            if self.len == N && self.spill.is_empty() {
                self.spill.reserve(2 * N);
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Empties the vector, keeping any spill capacity for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// The elements as a contiguous slice.
    pub fn as_slice(&self) -> &[T] {
        if self.len <= N {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for SmallVec<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<[T]> for SmallVec<T, N> {
    fn eq(&self, other: &[T]) -> bool {
        self.as_slice() == other
    }
}

impl<T: Copy + Default, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = SmallVec::new();
        v.extend(iter);
        v
    }
}

/// Blocks fetched off-chip during one simulator step. Sixteen inline
/// slots cover the deepest routine fetch bursts (lookahead 8–12 plus
/// spatial fill); longer reconstruction bursts spill.
pub type FetchList = SmallVec<BlockAddr, 16>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_n() {
        let mut v: SmallVec<u32, 4> = SmallVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i);
        }
        assert!(!v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn spills_preserving_order() {
        let mut v: SmallVec<u32, 4> = SmallVec::new();
        for i in 0..10 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(v.len(), 10);
        assert_eq!(v.as_slice(), (0..10).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn clear_returns_to_inline_storage() {
        let mut v: SmallVec<u32, 2> = SmallVec::new();
        for i in 0..5 {
            v.push(i);
        }
        v.clear();
        assert!(v.is_empty());
        v.push(9);
        assert!(!v.spilled());
        assert_eq!(v.as_slice(), &[9]);
    }

    #[test]
    fn deref_and_iteration() {
        let v: SmallVec<u32, 4> = (0..3).collect();
        assert_eq!(v[1], 1);
        assert_eq!(v.iter().sum::<u32>(), 3);
        let doubled: Vec<u32> = (&v).into_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, [0, 2, 4]);
    }

    #[test]
    fn equality_follows_contents() {
        let a: SmallVec<u32, 2> = (0..5).collect();
        let b: SmallVec<u32, 2> = (0..5).collect();
        let c: SmallVec<u32, 2> = (0..4).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
