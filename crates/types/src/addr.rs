//! Address newtypes: byte addresses, block addresses, region addresses,
//! block offsets within a region, and program counters.
//!
//! Keeping the granularities as distinct types prevents the classic
//! simulator bug of mixing a block number with a byte address. Conversions
//! are explicit ([`Addr::block`], [`BlockAddr::region`], ...) and cheap.

use core::fmt;

use crate::{BLOCK_SHIFT, REGION_BLOCKS, REGION_SHIFT};

/// A physical byte address.
///
/// # Example
///
/// ```
/// use stems_types::Addr;
/// let a = Addr::new(0x8040);
/// assert_eq!(a.get(), 0x8040);
/// assert_eq!(a.block().get(), 0x8040 >> 6);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The cache block containing this address.
    pub const fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> BLOCK_SHIFT)
    }

    /// The 2KB spatial region containing this address.
    pub const fn region(self) -> RegionAddr {
        RegionAddr(self.0 >> REGION_SHIFT)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-block address (byte address divided by the 64B block size).
///
/// This is the granularity at which caches, the coherence directory, and
/// all prefetchers in the paper operate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a raw block number.
    pub const fn new(raw: u64) -> Self {
        BlockAddr(raw)
    }

    /// Returns the raw block number.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// First byte address of the block.
    pub const fn base(self) -> Addr {
        Addr(self.0 << BLOCK_SHIFT)
    }

    /// The spatial region containing this block.
    pub const fn region(self) -> RegionAddr {
        RegionAddr(self.0 >> (REGION_SHIFT - BLOCK_SHIFT))
    }

    /// The block's offset within its 2KB region (0..32).
    pub const fn offset_in_region(self) -> BlockOffset {
        BlockOffset((self.0 & (REGION_BLOCKS as u64 - 1)) as u8)
    }

    /// The block `delta` blocks away, or `None` on address-space wraparound.
    ///
    /// Used by spatial predictors, which predict blocks at signed offsets
    /// relative to a trigger block.
    pub fn offset_by(self, delta: i64) -> Option<BlockAddr> {
        self.0.checked_add_signed(delta).map(BlockAddr)
    }
}

impl fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockAddr({:#x})", self.0)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:#x}", self.0)
    }
}

/// A 2KB spatial-region address (byte address divided by the region size).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RegionAddr(u64);

impl RegionAddr {
    /// Creates a region address from a raw region number.
    pub const fn new(raw: u64) -> Self {
        RegionAddr(raw)
    }

    /// Returns the raw region number.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// First byte address of the region.
    pub const fn base(self) -> Addr {
        Addr(self.0 << REGION_SHIFT)
    }

    /// The first cache block of the region.
    pub const fn first_block(self) -> BlockAddr {
        BlockAddr(self.0 << (REGION_SHIFT - BLOCK_SHIFT))
    }

    /// The block at `offset` within this region.
    ///
    /// # Panics
    ///
    /// Panics if `offset.get() >= 32` (cannot happen for offsets built via
    /// [`BlockOffset::new`]).
    pub fn block_at(self, offset: BlockOffset) -> BlockAddr {
        assert!((offset.0 as usize) < REGION_BLOCKS, "offset out of region");
        BlockAddr((self.0 << (REGION_SHIFT - BLOCK_SHIFT)) + offset.0 as u64)
    }
}

impl fmt::Debug for RegionAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RegionAddr({:#x})", self.0)
    }
}

impl fmt::Display for RegionAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{:#x}", self.0)
    }
}

/// A block offset within a 2KB spatial region: `0..32`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockOffset(u8);

impl BlockOffset {
    /// Creates an offset.
    ///
    /// # Panics
    ///
    /// Panics if `raw >= 32`.
    pub fn new(raw: u8) -> Self {
        assert!(
            (raw as usize) < REGION_BLOCKS,
            "block offset {raw} out of range 0..{REGION_BLOCKS}"
        );
        BlockOffset(raw)
    }

    /// Returns the raw offset value (always `< 32`).
    pub const fn get(self) -> u8 {
        self.0
    }

    /// Iterator over all 32 offsets in order.
    pub fn all() -> impl Iterator<Item = BlockOffset> {
        (0..REGION_BLOCKS as u8).map(BlockOffset)
    }
}

impl fmt::Debug for BlockOffset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockOffset({})", self.0)
    }
}

impl fmt::Display for BlockOffset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+{}", self.0)
    }
}

/// A program counter (the address of the instruction making an access).
///
/// SMS and STeMS correlate spatial patterns with the PC of the trigger
/// instruction, so training generalizes across regions touched by the same
/// code (Section 2.4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(u64);

impl Pc {
    /// Creates a PC from its raw value.
    pub const fn new(raw: u64) -> Self {
        Pc(raw)
    }

    /// Returns the raw value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The truncated 16-bit PC stored in RMOB entries (Section 4.3).
    pub const fn truncated16(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }
}

impl fmt::Debug for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pc({:#x})", self.0)
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc{:#x}", self.0)
    }
}

impl From<u64> for Pc {
    fn from(raw: u64) -> Self {
        Pc(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_round_trips_through_granularities() {
        let a = Addr::new(0x1234_5678);
        assert_eq!(a.block().base().get(), 0x1234_5678 & !63);
        assert_eq!(a.region().base().get(), 0x1234_5678 & !2047);
        assert_eq!(a.block().region(), a.region());
    }

    #[test]
    fn offset_in_region_matches_manual_computation() {
        let a = Addr::new(7 * 2048 + 13 * 64 + 5);
        assert_eq!(a.region().get(), 7);
        assert_eq!(a.block().offset_in_region().get(), 13);
        assert_eq!(a.region().block_at(BlockOffset::new(13)), a.block());
    }

    #[test]
    fn block_offset_by_signed() {
        let b = BlockAddr::new(100);
        assert_eq!(b.offset_by(5), Some(BlockAddr::new(105)));
        assert_eq!(b.offset_by(-100), Some(BlockAddr::new(0)));
        assert_eq!(b.offset_by(-101), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_offset_rejects_out_of_range() {
        let _ = BlockOffset::new(32);
    }

    #[test]
    fn all_offsets_are_in_order_and_complete() {
        let v: Vec<u8> = BlockOffset::all().map(|o| o.get()).collect();
        assert_eq!(v.len(), REGION_BLOCKS);
        assert_eq!(v[0], 0);
        assert_eq!(v[31], 31);
    }

    #[test]
    fn pc_truncation() {
        assert_eq!(Pc::new(0xABCD_1234).truncated16(), 0x1234);
    }

    #[test]
    fn display_forms_are_nonempty() {
        assert!(!format!("{}", Addr::new(0)).is_empty());
        assert!(!format!("{}", BlockAddr::new(0)).is_empty());
        assert!(!format!("{}", RegionAddr::new(0)).is_empty());
        assert!(!format!("{}", BlockOffset::new(0)).is_empty());
        assert!(!format!("{}", Pc::new(0)).is_empty());
    }
}
