//! Spatial bit patterns over a 32-block region.
//!
//! SMS (Section 2.4) encodes which blocks of a 2KB region were touched
//! during a spatial generation as a 32-bit vector, one bit per 64B block.

use core::fmt;

use crate::{BlockOffset, REGION_BLOCKS};

/// A set of touched blocks within one spatial region, one bit per block.
///
/// Bit *i* corresponds to [`BlockOffset`] *i*. The all-zero pattern is
/// valid but never produced by training (a generation always contains its
/// trigger access).
///
/// # Example
///
/// ```
/// use stems_types::{BlockOffset, SpatialPattern};
///
/// let mut p = SpatialPattern::empty();
/// p.set(BlockOffset::new(0));
/// p.set(BlockOffset::new(7));
/// assert_eq!(p.count(), 2);
/// assert!(p.contains(BlockOffset::new(7)));
/// let offsets: Vec<u8> = p.iter().map(|o| o.get()).collect();
/// assert_eq!(offsets, [0, 7]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SpatialPattern(u32);

impl SpatialPattern {
    /// The empty pattern.
    pub const fn empty() -> Self {
        SpatialPattern(0)
    }

    /// Builds a pattern from a raw bit vector.
    pub const fn from_bits(bits: u32) -> Self {
        SpatialPattern(bits)
    }

    /// Raw bit vector.
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Marks `offset` as touched.
    pub fn set(&mut self, offset: BlockOffset) {
        self.0 |= 1 << offset.get();
    }

    /// Clears `offset`.
    pub fn clear(&mut self, offset: BlockOffset) {
        self.0 &= !(1 << offset.get());
    }

    /// Whether `offset` is touched.
    pub const fn contains(self, offset: BlockOffset) -> bool {
        self.0 & (1 << offset.get()) != 0
    }

    /// Number of touched blocks.
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether no block is touched.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Union of two patterns.
    pub const fn union(self, other: Self) -> Self {
        SpatialPattern(self.0 | other.0)
    }

    /// Intersection of two patterns.
    pub const fn intersection(self, other: Self) -> Self {
        SpatialPattern(self.0 & other.0)
    }

    /// Blocks in `self` but not in `other`.
    pub const fn difference(self, other: Self) -> Self {
        SpatialPattern(self.0 & !other.0)
    }

    /// Iterates over touched offsets in increasing order.
    pub fn iter(self) -> Iter {
        Iter { bits: self.0 }
    }
}

impl FromIterator<BlockOffset> for SpatialPattern {
    fn from_iter<I: IntoIterator<Item = BlockOffset>>(iter: I) -> Self {
        let mut p = SpatialPattern::empty();
        for o in iter {
            p.set(o);
        }
        p
    }
}

impl Extend<BlockOffset> for SpatialPattern {
    fn extend<I: IntoIterator<Item = BlockOffset>>(&mut self, iter: I) {
        for o in iter {
            self.set(o);
        }
    }
}

impl IntoIterator for SpatialPattern {
    type Item = BlockOffset;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

/// Iterator over the touched offsets of a [`SpatialPattern`].
#[derive(Clone, Debug)]
pub struct Iter {
    bits: u32,
}

impl Iterator for Iter {
    type Item = BlockOffset;

    fn next(&mut self) -> Option<BlockOffset> {
        if self.bits == 0 {
            return None;
        }
        let tz = self.bits.trailing_zeros() as u8;
        self.bits &= self.bits - 1;
        Some(BlockOffset::new(tz))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bits.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl fmt::Debug for SpatialPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpatialPattern({:#034b})", self.0)
    }
}

impl fmt::Display for SpatialPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..REGION_BLOCKS as u8).rev() {
            let bit = if self.0 & (1 << i) != 0 { '1' } else { '.' };
            write!(f, "{bit}")?;
        }
        Ok(())
    }
}

impl fmt::Binary for SpatialPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for SpatialPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for SpatialPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_contains() {
        let mut p = SpatialPattern::empty();
        assert!(p.is_empty());
        p.set(BlockOffset::new(31));
        assert!(p.contains(BlockOffset::new(31)));
        assert_eq!(p.count(), 1);
        p.clear(BlockOffset::new(31));
        assert!(p.is_empty());
    }

    #[test]
    fn set_is_idempotent() {
        let mut p = SpatialPattern::empty();
        p.set(BlockOffset::new(4));
        p.set(BlockOffset::new(4));
        assert_eq!(p.count(), 1);
    }

    #[test]
    fn set_operations() {
        let a: SpatialPattern = [0u8, 1, 2].iter().map(|&o| BlockOffset::new(o)).collect();
        let b: SpatialPattern = [2u8, 3].iter().map(|&o| BlockOffset::new(o)).collect();
        assert_eq!(a.union(b).count(), 4);
        assert_eq!(a.intersection(b).count(), 1);
        assert_eq!(a.difference(b).count(), 2);
    }

    #[test]
    fn iter_yields_sorted_offsets() {
        let p = SpatialPattern::from_bits(0b1000_0000_0000_0101);
        let v: Vec<u8> = p.iter().map(|o| o.get()).collect();
        assert_eq!(v, [0, 2, 15]);
        assert_eq!(p.iter().len(), 3);
    }

    #[test]
    fn display_shows_all_32_positions() {
        let p = SpatialPattern::from_bits(1);
        let s = format!("{p}");
        assert_eq!(s.len(), 32);
        assert!(s.ends_with('1'));
    }
}
