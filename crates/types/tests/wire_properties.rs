//! Adversarial and property tests for the wire framing layer
//! (`docs/WIRE_PROTOCOL.md`), mirroring the trace store's
//! `store_properties.rs`: lossless round trips over arbitrary payloads
//! — pure codec and streaming reader alike — and typed, never
//! panicking, errors on every class of hostile bytes.

use proptest::prelude::*;

use stems_types::wire::{self, WireError, HELLO_BYTES, MAX_MESSAGE_PAYLOAD, MESSAGE_OVERHEAD};

/// A hello followed by three messages of distinct shapes (empty,
/// short, multi-hundred-byte) — the corruption target throughout.
fn valid_stream() -> Vec<u8> {
    let mut buf = Vec::new();
    wire::encode_hello(&mut buf);
    wire::encode_message(&mut buf, 0x01, b"");
    wire::encode_message(&mut buf, 0x02, b"short payload");
    let big: Vec<u8> = (0..300u32).map(|i| (i * 7) as u8).collect();
    wire::encode_message(&mut buf, 0x82, &big);
    buf
}

/// Drains a full byte stream through the transport-level reader,
/// returning the decoded `(kind, payload)` sequence.
fn read_all(bytes: &[u8]) -> Result<Vec<(u8, Vec<u8>)>, WireError> {
    let mut r = bytes;
    wire::read_hello(&mut r)?;
    let mut out = Vec::new();
    let mut payload = Vec::new();
    while let Some(kind) = wire::read_message(&mut r, &mut payload)? {
        out.push((kind, payload.clone()));
    }
    Ok(out)
}

proptest! {
    /// Any (kind, payload) sequence survives encode → decode untouched,
    /// through both the pure codec and the streaming reader, and the
    /// two agree with each other.
    #[test]
    fn messages_round_trip_any_payloads(
        frames in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..600)),
            0..8,
        ),
    ) {
        let mut buf = Vec::new();
        wire::encode_hello(&mut buf);
        let mut scratch = Vec::new();
        for (kind, payload) in &frames {
            wire::write_message(&mut buf, *kind, payload, &mut scratch).unwrap();
        }

        // Streaming reader.
        let decoded = read_all(&buf).unwrap();
        prop_assert_eq!(decoded.len(), frames.len());
        for ((k, p), (ek, ep)) in decoded.iter().zip(&frames) {
            prop_assert_eq!(k, ek);
            prop_assert_eq!(p, ep);
        }

        // Pure codec over the same bytes.
        let mut pos = wire::decode_hello(&buf).unwrap();
        for (ek, ep) in &frames {
            let (k, p, n) = wire::decode_message(&buf[pos..]).unwrap();
            prop_assert_eq!(&k, ek);
            prop_assert_eq!(p, ep.as_slice());
            prop_assert_eq!(n, MESSAGE_OVERHEAD + ep.len());
            pos += n;
        }
        prop_assert_eq!(pos, buf.len());
    }

    /// Truncating a valid stream anywhere yields `Truncated` — or a
    /// clean shorter stream when the cut lands exactly between frames.
    /// Never a panic, never a partially-delivered message.
    #[test]
    fn truncation_is_always_detected_or_clean(cut in 0usize..2000) {
        let bytes = valid_stream();
        let cut = cut % bytes.len();
        match read_all(&bytes[..cut]) {
            Ok(msgs) => {
                // Only frame boundaries at or past the hello read clean.
                prop_assert!(cut >= HELLO_BYTES);
                let mut boundary = HELLO_BYTES;
                for (_, p) in &msgs {
                    boundary += MESSAGE_OVERHEAD + p.len();
                }
                prop_assert_eq!(boundary, cut, "clean read must end on a frame boundary");
            }
            Err(WireError::Truncated { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    /// Flipping any single bit anywhere in a valid stream produces a
    /// typed error — the message CRC covers the header bytes too, so
    /// unlike the trace store there is no undecoded region where a flip
    /// can hide. Never a panic.
    #[test]
    fn single_bit_flips_are_always_typed_errors(pos in 0usize..2000, bit in 0u32..8) {
        let mut bytes = valid_stream();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        match read_all(&bytes) {
            Err(
                WireError::BadMagic { .. }
                | WireError::UnsupportedVersion { .. }
                | WireError::UnsupportedFlags { .. }
                | WireError::ChecksumMismatch { .. }
                | WireError::Oversized { .. }
                | WireError::Truncated { .. },
            ) => {}
            Ok(_) => prop_assert!(false, "flip at byte {pos} bit {bit} went undetected"),
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }

    /// Completely random bytes never panic either reader; whatever they
    /// decode as, the total consumed never exceeds the input.
    #[test]
    fn random_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = read_all(&bytes);
        let _ = wire::decode_hello(&bytes);
        if let Ok((_, payload, n)) = wire::decode_message(&bytes) {
            prop_assert!(n <= bytes.len());
            prop_assert!(payload.len() <= n);
        }
    }
}

#[test]
fn hostile_length_prefix_cannot_force_a_huge_allocation() {
    // A frame header declaring a payload over the bound is rejected from
    // the 5 header bytes alone — before any allocation of that size.
    let mut bytes = vec![0x01u8];
    bytes.extend_from_slice(&(MAX_MESSAGE_PAYLOAD + 1).to_le_bytes());
    assert!(matches!(
        wire::decode_message(&bytes),
        Err(WireError::Oversized { .. })
    ));
    let mut r = bytes.as_slice();
    let mut payload = Vec::new();
    assert!(matches!(
        wire::read_message(&mut r, &mut payload),
        Err(WireError::Oversized { .. })
    ));
    assert_eq!(
        payload.capacity(),
        0,
        "no payload allocation for a rejected length"
    );
}

#[test]
fn bad_hello_fields_are_typed_errors() {
    let mut ok = Vec::new();
    wire::encode_hello(&mut ok);

    let mut bad = ok.clone();
    bad[..8].copy_from_slice(b"STEMSTR1"); // trace-store magic, wrong layer
    assert!(matches!(
        read_all(&bad),
        Err(WireError::BadMagic { got }) if &got == b"STEMSTR1"
    ));

    let mut bad = ok.clone();
    bad[8..10].copy_from_slice(&2u16.to_le_bytes());
    assert!(matches!(
        read_all(&bad),
        Err(WireError::UnsupportedVersion { got: 2 })
    ));

    let mut bad = ok.clone();
    bad[10..12].copy_from_slice(&0x8000u16.to_le_bytes());
    assert!(matches!(
        read_all(&bad),
        Err(WireError::UnsupportedFlags { got: 0x8000 })
    ));
}
