//! The ROB-window timing model.
//!
//! A greedy out-of-order core model that preserves the two mechanisms the
//! paper's speedups are built on:
//!
//! * **memory-level parallelism** — independent misses overlap, bounded by
//!   the 96-entry ROB, the 32 MSHRs, and off-chip bandwidth; *dependent*
//!   misses (pointer chases) serialize, which is exactly what temporal
//!   streaming parallelizes (Section 2.1);
//! * **prefetch timeliness** — a prefetched block is only useful once its
//!   off-chip fetch completes, so bursty prediction (the naive hybrid of
//!   Section 5.5) queues on bandwidth while STeMS's single ordered stream
//!   stays just ahead of consumption.
//!
//! Instructions retire in order at the pipeline width; each access issues
//! at the latest of its program slot, the ROB head constraint, its data
//! dependence, and MSHR availability, then completes after the latency of
//! the level that satisfied it.

use std::cell::RefCell;
use std::collections::VecDeque;

use stems_core::engine::{Counters, CoverageSim, Prefetcher, Satisfied, StepOutcome};
use stems_core::session::SessionBuilder;
use stems_core::PrefetchConfig;
use stems_memsim::SystemConfig;
use stems_trace::{Access, Dependence, Trace};
use stems_types::{fx_map_with_capacity, BlockAddr, FxHashMap};

/// Latency and resource parameters for the timing model.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingParams {
    /// Dispatch/retire width (instructions per cycle).
    pub width: u64,
    /// Reorder-buffer size in instructions.
    pub rob: u64,
    /// Outstanding off-chip misses allowed (MSHRs).
    pub mshrs: usize,
    /// L1 hit latency (cycles).
    pub l1_latency: u64,
    /// L2 hit latency (cycles).
    pub l2_latency: u64,
    /// SVB hit latency (cycles) — the buffer sits next to the L1.
    pub svb_latency: u64,
    /// Off-chip miss latency (cycles): DRAM plus the torus round trip at
    /// the average hop count.
    pub offchip_latency: u64,
    /// Minimum cycles between off-chip fetch starts (per-node share of
    /// the 128 GB/s bisection, Table 1).
    pub fetch_bw_cycles: u64,
}

impl TimingParams {
    /// Derives the parameters from a Table 1 system configuration.
    pub fn from_system(sys: &SystemConfig) -> Self {
        TimingParams {
            width: sys.width as u64,
            rob: sys.rob_entries as u64,
            mshrs: sys.mshrs,
            l1_latency: sys.l1_latency,
            l2_latency: sys.l2_latency,
            svb_latency: 4,
            // Average torus distance on the 4x4 torus is 2 hops.
            offchip_latency: sys.off_chip_latency_cycles(2),
            // 64B per fetch at ~21 GB/s of usable per-node bandwidth
            // (the 128 GB/s bisection is not uniformly contended) is one
            // fetch per ~3ns = 12 cycles at 4 GHz.
            fetch_bw_cycles: 12,
        }
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::from_system(&SystemConfig::default())
    }
}

/// Result of a timed run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimingReport {
    /// Total cycles to retire the trace.
    pub cycles: u64,
    /// Instructions retired (memory accesses plus annotated work).
    pub instructions: u64,
    /// The functional coverage counters of the same run.
    pub counters: Counters,
}

impl TimingReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Speedup of `self` relative to `baseline` (same trace assumed).
    pub fn speedup_over(&self, baseline: &TimingReport) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// Performance improvement in percent (the y-axis of Figure 10).
    pub fn improvement_percent_over(&self, baseline: &TimingReport) -> f64 {
        (self.speedup_over(baseline) - 1.0) * 100.0
    }
}

/// The per-access event records of the timing model: the ROB retirement
/// window, MSHR occupancy, and in-flight prefetch arrival times.
///
/// Allocated once and recycled across runs through a thread-local pool
/// (the ROADMAP-named candidate): every `run_timing` cell used to pay a
/// fresh `VecDeque`/hash-map growth curve; a recycled scratch starts at
/// the high-water capacity of the previous run on the same worker
/// thread.
#[derive(Debug)]
struct TimingScratch {
    /// (instruction index, retire time) per past access, pending ROB
    /// exit.
    window: VecDeque<(u64, u64)>,
    /// Completion times of outstanding off-chip accesses (MSHR
    /// occupancy).
    mshr_q: VecDeque<u64>,
    /// Arrival times of in-flight/banked prefetched blocks.
    ready: FxHashMap<BlockAddr, u64>,
}

/// Capacity above which [`TimingScratch::reset`] gives memory back
/// instead of parking it in the pool: generously above any steady-state
/// run's needs (the ROB window holds ≤ `rob` entries, the MSHR queue ≤
/// `mshrs`; only the `ready` map can balloon under pathological
/// prefetch bursts).
const SCRATCH_RETAIN_CAPACITY: usize = 1 << 16;

impl TimingScratch {
    fn fresh() -> Box<TimingScratch> {
        Box::new(TimingScratch {
            window: VecDeque::new(),
            mshr_q: VecDeque::new(),
            ready: fx_map_with_capacity(1024),
        })
    }

    /// Drains all records, keeping their capacity for the next run —
    /// except buffers a pathological run grew past
    /// [`SCRATCH_RETAIN_CAPACITY`], which are shrunk so the pool never
    /// pins a high-water footprint for the thread's lifetime.
    fn reset(&mut self) {
        self.window.clear();
        self.window.shrink_to(SCRATCH_RETAIN_CAPACITY);
        self.mshr_q.clear();
        self.mshr_q.shrink_to(SCRATCH_RETAIN_CAPACITY);
        self.ready.clear();
        self.ready.shrink_to(SCRATCH_RETAIN_CAPACITY);
    }
}

thread_local! {
    /// Per-thread pool of retired [`TimingScratch`] records. One slot is
    /// enough: timing runs do not nest within a worker thread.
    static SCRATCH_POOL: RefCell<Option<Box<TimingScratch>>> = const { RefCell::new(None) };
}

fn acquire_scratch() -> Box<TimingScratch> {
    SCRATCH_POOL
        .with(|pool| pool.borrow_mut().take())
        .unwrap_or_else(TimingScratch::fresh)
}

/// The ROB/MSHR/bandwidth core model as a step observer: feed it each
/// access and the engine's [`StepOutcome`] in trace order, then
/// [`TimingModel::finish`] with the finalized counters.
///
/// This is the state machine behind [`time_trace`], split out so a
/// [`stems_core::session::Session`] can drive it through the batched
/// `run_chunk_with` path.
#[derive(Debug)]
pub struct TimingModel {
    params: TimingParams,
    instr: u64,
    prev_complete: u64,
    prev_retire: u64,
    rob_floor: u64,
    /// Next cycle the off-chip fetch port is free.
    bw_free: u64,
    end: u64,
    /// `Some` until Drop retires it into the pool — an `Option` so the
    /// drop path can move the box out without allocating a replacement.
    scratch: Option<Box<TimingScratch>>,
}

impl TimingModel {
    /// Creates a model at cycle zero, reusing a pooled scratch record
    /// when one is available on this thread.
    pub fn new(params: &TimingParams) -> Self {
        TimingModel {
            params: params.clone(),
            instr: 0,
            prev_complete: 0,
            prev_retire: 0,
            rob_floor: 0,
            bw_free: 0,
            end: 0,
            scratch: Some(acquire_scratch()),
        }
    }

    /// Accounts one access and the engine outcome that resolved it.
    pub fn observe(&mut self, access: &Access, out: &StepOutcome) {
        let params = &self.params;
        let scratch = &mut **self.scratch.as_mut().expect("scratch present until drop");
        let block = access.addr.block();
        self.instr += access.work_before as u64 + 1;

        // Program-order dispatch slot.
        let mut t = self.instr / params.width;
        // ROB: everything more than `rob` instructions older must have
        // retired before this access can dispatch.
        let limit = self.instr.saturating_sub(params.rob);
        while let Some(&(idx, retire)) = scratch.window.front() {
            if idx <= limit {
                self.rob_floor = self.rob_floor.max(retire);
                scratch.window.pop_front();
            } else {
                break;
            }
        }
        t = t.max(self.rob_floor);
        // Data dependence: a pointer chase waits for the previous access.
        if access.dep == Dependence::OnPrevAccess {
            t = t.max(self.prev_complete);
        }

        let latency = match out.satisfied {
            Satisfied::L1 => {
                if out.prefetched_hit {
                    // First touch of an SMS-prefetched block: wait for its
                    // fetch to arrive if it has not yet.
                    let arrive = scratch.ready.remove(&block).unwrap_or(0);
                    params.l1_latency + arrive.saturating_sub(t)
                } else {
                    params.l1_latency
                }
            }
            Satisfied::Svb(_) => {
                let arrive = scratch.ready.remove(&block).unwrap_or(0);
                params.svb_latency + arrive.saturating_sub(t)
            }
            Satisfied::L2 => params.l2_latency,
            Satisfied::OffChip => {
                // MSHR admission.
                while let Some(&done) = scratch.mshr_q.front() {
                    if done <= t {
                        scratch.mshr_q.pop_front();
                    } else {
                        break;
                    }
                }
                if scratch.mshr_q.len() >= params.mshrs {
                    t = t.max(scratch.mshr_q.pop_front().expect("mshr queue nonempty"));
                }
                // Bandwidth: the demand fetch occupies the off-chip port.
                let start = t.max(self.bw_free);
                self.bw_free = start + params.fetch_bw_cycles;
                let complete_in = (start - t) + params.offchip_latency;
                let pos = scratch
                    .mshr_q
                    .binary_search(&(t + complete_in))
                    .unwrap_or_else(|e| e);
                scratch.mshr_q.insert(pos, t + complete_in);
                complete_in
            }
        };

        // Prefetches issued while handling this access occupy bandwidth
        // and arrive one off-chip latency later.
        for fetched in &out.fetched {
            let start = t.max(self.bw_free);
            self.bw_free = start + params.fetch_bw_cycles;
            scratch
                .ready
                .insert(*fetched, start + params.offchip_latency);
        }

        let complete = t + latency;
        self.prev_complete = complete;
        self.prev_retire = self.prev_retire.max(complete);
        scratch.window.push_back((self.instr, self.prev_retire));
        self.end = self
            .end
            .max(self.prev_retire)
            .max(self.instr / params.width);

        // Bound the in-flight bookkeeping.
        if scratch.ready.len() > 1 << 20 {
            scratch.ready.clear();
        }
    }

    /// Completes the run, pairing the timed cycles with the functional
    /// `counters` of the same run.
    pub fn finish(self, counters: Counters) -> TimingReport {
        TimingReport {
            cycles: self.end.max(1),
            instructions: self.instr,
            counters,
        }
    }
}

impl Drop for TimingModel {
    /// Retires the scratch record into the thread-local pool so the next
    /// run on this thread starts at the previous (bounded) capacity.
    fn drop(&mut self) {
        let Some(mut scratch) = self.scratch.take() else {
            return;
        };
        scratch.reset();
        SCRATCH_POOL.with(|pool| {
            let mut slot = pool.borrow_mut();
            if slot.is_none() {
                *slot = Some(scratch);
            }
        });
    }
}

/// Runs `prefetcher` over `trace` with full timing.
///
/// `invalidations` optionally enables coherence-invalidation injection
/// `(rate, seed)` as in [`CoverageSim::with_invalidations`].
pub fn time_trace<P: Prefetcher>(
    sys: &SystemConfig,
    cfg: &PrefetchConfig,
    params: &TimingParams,
    prefetcher: P,
    trace: &Trace,
    invalidations: Option<(f64, u64)>,
) -> TimingReport {
    let mut sim = CoverageSim::new(sys, cfg, prefetcher);
    if let Some((rate, seed)) = invalidations {
        sim = sim.with_invalidations(rate, seed);
    }
    let mut model = TimingModel::new(params);
    sim.run_chunk_with(trace.as_slice(), |access, out| model.observe(access, out));
    model.finish(sim.finalize())
}

/// Extends [`SessionBuilder`] with the timing model, completing the
/// builder chain the harness uses:
///
/// ```
/// use stems_core::session::{Predictor, Session};
/// use stems_core::PrefetchConfig;
/// use stems_memsim::SystemConfig;
/// use stems_timing::{SessionTiming, TimingParams};
/// use stems_trace::Trace;
///
/// let sys = SystemConfig::small();
/// let mut trace = Trace::new();
/// trace.read(0x400, 0x10_0000);
/// let report = Session::builder(&sys)
///     .prefetch(&PrefetchConfig::small())
///     .predictor(Predictor::Tms)
///     .timing(&TimingParams::from_system(&sys))
///     .run(&trace);
/// assert_eq!(report.counters.accesses, 1);
/// ```
pub trait SessionTiming {
    /// Attaches the ROB/MSHR/bandwidth timing model to the session under
    /// construction.
    fn timing(self, params: &TimingParams) -> TimedSessionBuilder;
}

impl SessionTiming for SessionBuilder {
    fn timing(self, params: &TimingParams) -> TimedSessionBuilder {
        TimedSessionBuilder {
            session: self,
            params: params.clone(),
        }
    }
}

/// A [`SessionBuilder`] with a timing model attached; see
/// [`SessionTiming::timing`].
#[derive(Clone, Debug)]
pub struct TimedSessionBuilder {
    session: SessionBuilder,
    params: TimingParams,
}

impl TimedSessionBuilder {
    /// Builds the timed session with empty caches at cycle zero.
    pub fn build(self) -> TimedSession {
        TimedSession {
            session: self.session.build(),
            model: TimingModel::new(&self.params),
        }
    }

    /// Convenience: builds the session, runs the whole trace through the
    /// batched path, and returns the timing report.
    pub fn run(self, trace: &Trace) -> TimingReport {
        self.build().run(trace)
    }
}

/// A [`stems_core::session::Session`] whose outcomes feed the timing
/// model as they are produced by the batched engine path.
#[derive(Debug)]
pub struct TimedSession {
    session: stems_core::session::Session,
    model: TimingModel,
}

impl TimedSession {
    /// Delivers a batch of accesses to the engine and the timing model.
    pub fn run_chunk(&mut self, chunk: &[Access]) {
        let model = &mut self.model;
        self.session
            .run_chunk_with(chunk, |access, out| model.observe(access, out));
    }

    /// The functional session under the timing model.
    pub fn session(&self) -> &stems_core::session::Session {
        &self.session
    }

    /// Finalizes the functional counters and completes the report.
    pub fn finish(self) -> TimingReport {
        let TimedSession { mut session, model } = self;
        model.finish(session.finalize())
    }

    /// Runs the whole trace and finishes.
    pub fn run(mut self, trace: &Trace) -> TimingReport {
        self.run_chunk(trace.as_slice());
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_core::engine::NullPrefetcher;
    use stems_core::{PrefetchConfig, TmsPrefetcher};
    use stems_trace::Access;
    use stems_types::{Addr, Pc};

    fn sys() -> SystemConfig {
        SystemConfig::small()
    }

    fn cfg() -> PrefetchConfig {
        PrefetchConfig::small()
    }

    fn params() -> TimingParams {
        TimingParams::from_system(&SystemConfig::small())
    }

    fn run_null(t: &Trace) -> TimingReport {
        time_trace(&sys(), &cfg(), &params(), NullPrefetcher, t, None)
    }

    #[test]
    fn l1_hits_run_at_core_speed() {
        let mut t = Trace::new();
        for _ in 0..1000 {
            t.push(Access::read(Pc::new(1), Addr::new(64)).with_work(3));
        }
        let r = run_null(&t);
        // 4 instructions per access at width 4: ~1 cycle per access.
        assert!(r.ipc() > 3.0, "ipc = {}", r.ipc());
    }

    #[test]
    fn dependent_misses_serialize() {
        // 64 dependent cold misses: total time ~ 64 * offchip latency.
        let mut dep_t = Trace::new();
        let mut ind_t = Trace::new();
        for i in 0..64u64 {
            let a = Addr::new(i * (1 << 21));
            dep_t.push(Access::read(Pc::new(1), a).with_dep(Dependence::OnPrevAccess));
            ind_t.push(Access::read(Pc::new(1), a));
        }
        let dep = run_null(&dep_t);
        let ind = run_null(&ind_t);
        assert!(
            dep.cycles > 3 * ind.cycles,
            "dependent {} vs independent {}",
            dep.cycles,
            ind.cycles
        );
        let p = params();
        assert!(dep.cycles >= 64 * p.offchip_latency);
    }

    #[test]
    fn rob_bounds_independent_overlap() {
        // Without work, 96-instruction ROB admits ~96 parallel accesses;
        // with large work budgets between accesses the window shrinks.
        let mut t = Trace::new();
        for i in 0..256u64 {
            t.push(Access::read(Pc::new(1), Addr::new(i * (1 << 21))).with_work(95));
        }
        let r = run_null(&t);
        // Each access is ~96 instructions apart: ROB holds ~1 access, so
        // misses barely overlap.
        let p = params();
        assert!(r.cycles > 128 * p.fetch_bw_cycles, "cycles = {}", r.cycles);
    }

    #[test]
    fn prefetching_speeds_up_repeated_pointer_chase() {
        let mut t = Trace::new();
        for _ in 0..4 {
            for i in 0..256u64 {
                let a = Addr::new(((i * 7919 + 13) % 1024) * (1 << 21));
                t.push(
                    Access::read(Pc::new(1), a)
                        .with_dep(Dependence::OnPrevAccess)
                        .with_work(8),
                );
            }
        }
        let base = run_null(&t);
        let tms = time_trace(
            &sys(),
            &cfg(),
            &params(),
            TmsPrefetcher::new(&cfg()),
            &t,
            None,
        );
        assert!(
            tms.improvement_percent_over(&base) > 30.0,
            "TMS should parallelize the chase: base {} vs tms {} ({}%)",
            base.cycles,
            tms.cycles,
            tms.improvement_percent_over(&base)
        );
    }

    #[test]
    fn bandwidth_limits_burst_fetches() {
        // 64 independent misses issue in a burst: total time is bounded
        // below by the bandwidth serialization.
        let mut t = Trace::new();
        for i in 0..64u64 {
            t.push(Access::read(Pc::new(1), Addr::new(i * (1 << 21))));
        }
        let r = run_null(&t);
        let p = params();
        assert!(r.cycles >= 48 * p.fetch_bw_cycles);
    }

    #[test]
    fn timed_session_matches_time_trace() {
        use stems_core::session::{Predictor, Session};

        let mut t = Trace::new();
        for _ in 0..3 {
            for i in 0..200u64 {
                let a = Addr::new(((i * 7919 + 13) % 512) * (1 << 21));
                t.push(
                    Access::read(Pc::new(1), a)
                        .with_dep(Dependence::OnPrevAccess)
                        .with_work(4),
                );
            }
        }
        for p in Predictor::all() {
            let direct = time_trace(
                &sys(),
                &cfg(),
                &params(),
                p.build(&cfg()),
                &t,
                Some((0.01, 9)),
            );
            let via_session = Session::builder(&sys())
                .prefetch(&cfg())
                .predictor(p)
                .invalidations(0.01, 9)
                .timing(&params())
                .run(&t);
            assert_eq!(direct, via_session, "{p}");
        }
    }

    /// The thread-local scratch pool must be invisible in the results:
    /// back-to-back runs on one thread (the second reusing the first's
    /// retired records) report identical cycles and counters.
    #[test]
    fn pooled_scratch_does_not_change_results() {
        let mut t = Trace::new();
        for i in 0..500u64 {
            t.push(Access::read(Pc::new(1), Addr::new((i % 96) * (1 << 21))).with_work(2));
        }
        let first = run_null(&t);
        let second = run_null(&t);
        assert_eq!(first, second);
    }

    #[test]
    fn report_arithmetic() {
        let a = TimingReport {
            cycles: 100,
            instructions: 400,
            counters: Counters::default(),
        };
        let b = TimingReport {
            cycles: 50,
            instructions: 400,
            counters: Counters::default(),
        };
        assert!((b.speedup_over(&a) - 2.0).abs() < 1e-12);
        assert!((b.improvement_percent_over(&a) - 100.0).abs() < 1e-12);
        assert!((a.ipc() - 4.0).abs() < 1e-12);
    }
}
