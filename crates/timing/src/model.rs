//! The ROB-window timing model.
//!
//! A greedy out-of-order core model that preserves the two mechanisms the
//! paper's speedups are built on:
//!
//! * **memory-level parallelism** — independent misses overlap, bounded by
//!   the 96-entry ROB, the 32 MSHRs, and off-chip bandwidth; *dependent*
//!   misses (pointer chases) serialize, which is exactly what temporal
//!   streaming parallelizes (Section 2.1);
//! * **prefetch timeliness** — a prefetched block is only useful once its
//!   off-chip fetch completes, so bursty prediction (the naive hybrid of
//!   Section 5.5) queues on bandwidth while STeMS's single ordered stream
//!   stays just ahead of consumption.
//!
//! Instructions retire in order at the pipeline width; each access issues
//! at the latest of its program slot, the ROB head constraint, its data
//! dependence, and MSHR availability, then completes after the latency of
//! the level that satisfied it.

use std::collections::VecDeque;

use stems_core::engine::{Counters, CoverageSim, Prefetcher, Satisfied};
use stems_core::PrefetchConfig;
use stems_memsim::SystemConfig;
use stems_trace::{Dependence, Trace};
use stems_types::{fx_map_with_capacity, BlockAddr, FxHashMap};

/// Latency and resource parameters for the timing model.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingParams {
    /// Dispatch/retire width (instructions per cycle).
    pub width: u64,
    /// Reorder-buffer size in instructions.
    pub rob: u64,
    /// Outstanding off-chip misses allowed (MSHRs).
    pub mshrs: usize,
    /// L1 hit latency (cycles).
    pub l1_latency: u64,
    /// L2 hit latency (cycles).
    pub l2_latency: u64,
    /// SVB hit latency (cycles) — the buffer sits next to the L1.
    pub svb_latency: u64,
    /// Off-chip miss latency (cycles): DRAM plus the torus round trip at
    /// the average hop count.
    pub offchip_latency: u64,
    /// Minimum cycles between off-chip fetch starts (per-node share of
    /// the 128 GB/s bisection, Table 1).
    pub fetch_bw_cycles: u64,
}

impl TimingParams {
    /// Derives the parameters from a Table 1 system configuration.
    pub fn from_system(sys: &SystemConfig) -> Self {
        TimingParams {
            width: sys.width as u64,
            rob: sys.rob_entries as u64,
            mshrs: sys.mshrs,
            l1_latency: sys.l1_latency,
            l2_latency: sys.l2_latency,
            svb_latency: 4,
            // Average torus distance on the 4x4 torus is 2 hops.
            offchip_latency: sys.off_chip_latency_cycles(2),
            // 64B per fetch at ~21 GB/s of usable per-node bandwidth
            // (the 128 GB/s bisection is not uniformly contended) is one
            // fetch per ~3ns = 12 cycles at 4 GHz.
            fetch_bw_cycles: 12,
        }
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::from_system(&SystemConfig::default())
    }
}

/// Result of a timed run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimingReport {
    /// Total cycles to retire the trace.
    pub cycles: u64,
    /// Instructions retired (memory accesses plus annotated work).
    pub instructions: u64,
    /// The functional coverage counters of the same run.
    pub counters: Counters,
}

impl TimingReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Speedup of `self` relative to `baseline` (same trace assumed).
    pub fn speedup_over(&self, baseline: &TimingReport) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// Performance improvement in percent (the y-axis of Figure 10).
    pub fn improvement_percent_over(&self, baseline: &TimingReport) -> f64 {
        (self.speedup_over(baseline) - 1.0) * 100.0
    }
}

/// Runs `prefetcher` over `trace` with full timing.
///
/// `invalidations` optionally enables coherence-invalidation injection
/// `(rate, seed)` as in [`CoverageSim::with_invalidations`].
pub fn time_trace<P: Prefetcher>(
    sys: &SystemConfig,
    cfg: &PrefetchConfig,
    params: &TimingParams,
    prefetcher: P,
    trace: &Trace,
    invalidations: Option<(f64, u64)>,
) -> TimingReport {
    let mut sim = CoverageSim::new(sys, cfg, prefetcher);
    if let Some((rate, seed)) = invalidations {
        sim = sim.with_invalidations(rate, seed);
    }

    let mut instr: u64 = 0;
    let mut prev_complete: u64 = 0;
    let mut prev_retire: u64 = 0;
    // (instruction index, retire time) per past access, pending ROB exit.
    let mut window: VecDeque<(u64, u64)> = VecDeque::new();
    let mut rob_floor: u64 = 0;
    // Completion times of outstanding off-chip accesses (MSHR occupancy).
    let mut mshr_q: VecDeque<u64> = VecDeque::new();
    // Next cycle the off-chip fetch port is free.
    let mut bw_free: u64 = 0;
    // Arrival times of in-flight/banked prefetched blocks.
    let mut ready: FxHashMap<BlockAddr, u64> = fx_map_with_capacity(1024);
    let mut end: u64 = 0;

    for access in trace.iter() {
        let out = sim.step(access);
        let block = access.addr.block();
        instr += access.work_before as u64 + 1;

        // Program-order dispatch slot.
        let mut t = instr / params.width;
        // ROB: everything more than `rob` instructions older must have
        // retired before this access can dispatch.
        let limit = instr.saturating_sub(params.rob);
        while let Some(&(idx, retire)) = window.front() {
            if idx <= limit {
                rob_floor = rob_floor.max(retire);
                window.pop_front();
            } else {
                break;
            }
        }
        t = t.max(rob_floor);
        // Data dependence: a pointer chase waits for the previous access.
        if access.dep == Dependence::OnPrevAccess {
            t = t.max(prev_complete);
        }

        let latency = match out.satisfied {
            Satisfied::L1 => {
                if out.prefetched_hit {
                    // First touch of an SMS-prefetched block: wait for its
                    // fetch to arrive if it has not yet.
                    let arrive = ready.remove(&block).unwrap_or(0);
                    params.l1_latency + arrive.saturating_sub(t)
                } else {
                    params.l1_latency
                }
            }
            Satisfied::Svb(_) => {
                let arrive = ready.remove(&block).unwrap_or(0);
                params.svb_latency + arrive.saturating_sub(t)
            }
            Satisfied::L2 => params.l2_latency,
            Satisfied::OffChip => {
                // MSHR admission.
                while let Some(&done) = mshr_q.front() {
                    if done <= t {
                        mshr_q.pop_front();
                    } else {
                        break;
                    }
                }
                if mshr_q.len() >= params.mshrs {
                    t = t.max(mshr_q.pop_front().expect("mshr queue nonempty"));
                }
                // Bandwidth: the demand fetch occupies the off-chip port.
                let start = t.max(bw_free);
                bw_free = start + params.fetch_bw_cycles;
                let complete_in = (start - t) + params.offchip_latency;
                let pos = mshr_q
                    .binary_search(&(t + complete_in))
                    .unwrap_or_else(|e| e);
                mshr_q.insert(pos, t + complete_in);
                complete_in
            }
        };

        // Prefetches issued while handling this access occupy bandwidth
        // and arrive one off-chip latency later.
        for fetched in &out.fetched {
            let start = t.max(bw_free);
            bw_free = start + params.fetch_bw_cycles;
            ready.insert(*fetched, start + params.offchip_latency);
        }

        let complete = t + latency;
        prev_complete = complete;
        prev_retire = prev_retire.max(complete);
        window.push_back((instr, prev_retire));
        end = end.max(prev_retire).max(instr / params.width);

        // Bound the in-flight bookkeeping.
        if ready.len() > 1 << 20 {
            ready.clear();
        }
    }
    let counters = sim.finalize();
    TimingReport {
        cycles: end.max(1),
        instructions: instr,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_core::engine::NullPrefetcher;
    use stems_core::{PrefetchConfig, TmsPrefetcher};
    use stems_trace::Access;
    use stems_types::{Addr, Pc};

    fn sys() -> SystemConfig {
        SystemConfig::small()
    }

    fn cfg() -> PrefetchConfig {
        PrefetchConfig::small()
    }

    fn params() -> TimingParams {
        TimingParams::from_system(&SystemConfig::small())
    }

    fn run_null(t: &Trace) -> TimingReport {
        time_trace(&sys(), &cfg(), &params(), NullPrefetcher, t, None)
    }

    #[test]
    fn l1_hits_run_at_core_speed() {
        let mut t = Trace::new();
        for _ in 0..1000 {
            t.push(Access::read(Pc::new(1), Addr::new(64)).with_work(3));
        }
        let r = run_null(&t);
        // 4 instructions per access at width 4: ~1 cycle per access.
        assert!(r.ipc() > 3.0, "ipc = {}", r.ipc());
    }

    #[test]
    fn dependent_misses_serialize() {
        // 64 dependent cold misses: total time ~ 64 * offchip latency.
        let mut dep_t = Trace::new();
        let mut ind_t = Trace::new();
        for i in 0..64u64 {
            let a = Addr::new(i * (1 << 21));
            dep_t.push(Access::read(Pc::new(1), a).with_dep(Dependence::OnPrevAccess));
            ind_t.push(Access::read(Pc::new(1), a));
        }
        let dep = run_null(&dep_t);
        let ind = run_null(&ind_t);
        assert!(
            dep.cycles > 3 * ind.cycles,
            "dependent {} vs independent {}",
            dep.cycles,
            ind.cycles
        );
        let p = params();
        assert!(dep.cycles >= 64 * p.offchip_latency);
    }

    #[test]
    fn rob_bounds_independent_overlap() {
        // Without work, 96-instruction ROB admits ~96 parallel accesses;
        // with large work budgets between accesses the window shrinks.
        let mut t = Trace::new();
        for i in 0..256u64 {
            t.push(Access::read(Pc::new(1), Addr::new(i * (1 << 21))).with_work(95));
        }
        let r = run_null(&t);
        // Each access is ~96 instructions apart: ROB holds ~1 access, so
        // misses barely overlap.
        let p = params();
        assert!(r.cycles > 128 * p.fetch_bw_cycles, "cycles = {}", r.cycles);
    }

    #[test]
    fn prefetching_speeds_up_repeated_pointer_chase() {
        let mut t = Trace::new();
        for _ in 0..4 {
            for i in 0..256u64 {
                let a = Addr::new(((i * 7919 + 13) % 1024) * (1 << 21));
                t.push(
                    Access::read(Pc::new(1), a)
                        .with_dep(Dependence::OnPrevAccess)
                        .with_work(8),
                );
            }
        }
        let base = run_null(&t);
        let tms = time_trace(
            &sys(),
            &cfg(),
            &params(),
            TmsPrefetcher::new(&cfg()),
            &t,
            None,
        );
        assert!(
            tms.improvement_percent_over(&base) > 30.0,
            "TMS should parallelize the chase: base {} vs tms {} ({}%)",
            base.cycles,
            tms.cycles,
            tms.improvement_percent_over(&base)
        );
    }

    #[test]
    fn bandwidth_limits_burst_fetches() {
        // 64 independent misses issue in a burst: total time is bounded
        // below by the bandwidth serialization.
        let mut t = Trace::new();
        for i in 0..64u64 {
            t.push(Access::read(Pc::new(1), Addr::new(i * (1 << 21))));
        }
        let r = run_null(&t);
        let p = params();
        assert!(r.cycles >= 48 * p.fetch_bw_cycles);
    }

    #[test]
    fn report_arithmetic() {
        let a = TimingReport {
            cycles: 100,
            instructions: 400,
            counters: Counters::default(),
        };
        let b = TimingReport {
            cycles: 50,
            instructions: 400,
            counters: Counters::default(),
        };
        assert!((b.speedup_over(&a) - 2.0).abs() < 1e-12);
        assert!((b.improvement_percent_over(&a) - 100.0).abs() < 1e-12);
        assert!((a.ipc() - 4.0).abs() < 1e-12);
    }
}
