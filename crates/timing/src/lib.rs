//! Timing simulation for the STeMS reproduction (Figure 10).
//!
//! * [`model`] — a single-node ROB/MSHR/bandwidth timing model driven by
//!   the functional coverage engine, reporting cycles and IPC;
//! * [`multiproc`] — a lock-step multi-node run over the directory +
//!   torus substrate (validates the coherence behaviour the single-node
//!   harness approximates with invalidation injection).
//!
//! # Example
//!
//! ```
//! use stems_core::engine::NullPrefetcher;
//! use stems_core::{PrefetchConfig, TmsPrefetcher};
//! use stems_memsim::SystemConfig;
//! use stems_timing::{time_trace, TimingParams};
//! use stems_trace::{Access, Dependence, Trace};
//! use stems_types::{Addr, Pc};
//!
//! // A repeated dependent-miss chain.
//! let mut t = Trace::new();
//! for _ in 0..3 {
//!     for i in 0..128u64 {
//!         let a = Addr::new(((i * 7919) % 512) * (1 << 21));
//!         t.push(Access::read(Pc::new(1), a).with_dep(Dependence::OnPrevAccess));
//!     }
//! }
//! let sys = SystemConfig::small();
//! let cfg = PrefetchConfig::small();
//! let params = TimingParams::from_system(&sys);
//! let base = time_trace(&sys, &cfg, &params, NullPrefetcher, &t, None);
//! let tms = time_trace(&sys, &cfg, &params, TmsPrefetcher::new(&cfg), &t, None);
//! assert!(tms.cycles < base.cycles);
//! ```

pub mod model;
pub mod multiproc;

pub use model::{
    time_trace, SessionTiming, TimedSession, TimedSessionBuilder, TimingModel, TimingParams,
    TimingReport,
};
pub use multiproc::{run_lockstep, MultiProcReport, NodeStats};
