//! Lock-step multi-node simulation over the directory + torus substrate.
//!
//! The paper's testbed is a 16-node directory-based shared-memory
//! multiprocessor (Table 1). This module interleaves per-node traces
//! round-robin through private L1/L2 hierarchies coupled by the full-map
//! [`Directory`], applying coherence invalidations to the victims and
//! accounting torus-distance latencies per miss. The figure harnesses use
//! single-node detail plus invalidation injection for speed (DESIGN.md
//! §2); this substrate validates that the injected rates are plausible
//! and exercises the protocol end to end.

use stems_memsim::{
    directory::DataSource, Directory, Hierarchy, Level, NodeId, SystemConfig, Torus,
};
use stems_trace::Trace;

/// Per-node statistics from a lock-step run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Demand accesses processed.
    pub accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// Off-chip misses served by the home node's memory.
    pub from_memory: u64,
    /// Off-chip misses forwarded from another node's cache.
    pub from_remote_cache: u64,
    /// Coherence invalidations received that hit this node's L1.
    pub invalidations_received: u64,
    /// Estimated miss cycles (torus hops + DRAM), summed.
    pub miss_cycles: u64,
}

impl NodeStats {
    /// Off-chip misses of any source.
    pub fn offchip(&self) -> u64 {
        self.from_memory + self.from_remote_cache
    }

    /// Invalidations received per thousand accesses — directly comparable
    /// to the single-node injection rate used by the figure harnesses.
    pub fn invalidation_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.invalidations_received as f64 / self.accesses as f64
        }
    }
}

/// Aggregate result of [`run_lockstep`].
#[derive(Clone, Debug, Default)]
pub struct MultiProcReport {
    /// Per-node statistics.
    pub nodes: Vec<NodeStats>,
}

impl MultiProcReport {
    /// Sum across nodes.
    pub fn total(&self) -> NodeStats {
        let mut t = NodeStats::default();
        for n in &self.nodes {
            t.accesses += n.accesses;
            t.l1_hits += n.l1_hits;
            t.l2_hits += n.l2_hits;
            t.from_memory += n.from_memory;
            t.from_remote_cache += n.from_remote_cache;
            t.invalidations_received += n.invalidations_received;
            t.miss_cycles += n.miss_cycles;
        }
        t
    }
}

/// Runs one trace per node, interleaved round-robin, through private
/// hierarchies coupled by the directory protocol.
///
/// # Panics
///
/// Panics if `traces.len()` does not match `sys.nodes` or the torus size.
pub fn run_lockstep(sys: &SystemConfig, traces: &[Trace]) -> MultiProcReport {
    assert_eq!(traces.len(), sys.nodes, "one trace per node required");
    let dim = (sys.nodes as f64).sqrt() as usize;
    assert_eq!(dim * dim, sys.nodes, "node count must be a square torus");
    let torus = Torus::new(dim);
    let mut directory = Directory::new(sys.nodes);
    let mut hierarchies: Vec<Hierarchy> = (0..sys.nodes).map(|_| Hierarchy::new(sys)).collect();
    let mut stats = vec![NodeStats::default(); sys.nodes];
    let mut cursors = vec![0usize; sys.nodes];

    let mut live = true;
    while live {
        live = false;
        for n in 0..sys.nodes {
            let trace = &traces[n];
            if cursors[n] >= trace.len() {
                continue;
            }
            live = true;
            let access = &trace.as_slice()[cursors[n]];
            cursors[n] += 1;
            let node = NodeId(n);
            let block = access.addr.block();
            let is_write = !access.is_read();
            let out = hierarchies[n].access(block, is_write);
            for evicted in &out.l1_evicted {
                // Silent replacement notice so directory state stays
                // accurate when the block also left the L2.
                if !hierarchies[n].in_l2(*evicted) {
                    directory.evict(node, *evicted);
                }
            }
            stats[n].accesses += 1;
            if is_write && out.level != Level::Memory && directory.owner(block) != Some(node) {
                // Write hit on a line not held modified: an upgrade that
                // invalidates every other sharer.
                let w = directory.write(node, block);
                for victim in w.invalidated {
                    if victim != node && hierarchies[victim.0].invalidate(block) {
                        stats[victim.0].invalidations_received += 1;
                    }
                }
            }
            match out.level {
                Level::L1 => stats[n].l1_hits += 1,
                Level::L2 => stats[n].l2_hits += 1,
                Level::Memory => {
                    let home = torus.home(block);
                    let req_hops = torus.hops(node, home);
                    let (source, invalidated) = if is_write {
                        let w = directory.write(node, block);
                        (w.source, w.invalidated)
                    } else {
                        let r = directory.read(node, block);
                        (r.source, Vec::new())
                    };
                    for victim in invalidated {
                        if hierarchies[victim.0].invalidate(block) {
                            stats[victim.0].invalidations_received += 1;
                        }
                    }
                    let lat = match source {
                        DataSource::Memory => {
                            stats[n].from_memory += 1;
                            sys.mem_latency_cycles()
                                + 2 * req_hops as u64 * sys.hop_latency_cycles()
                        }
                        DataSource::RemoteCache(owner) => {
                            stats[n].from_remote_cache += 1;
                            let fwd = torus.hops(home, owner) + torus.hops(owner, node);
                            (req_hops as u64 + fwd as u64) * sys.hop_latency_cycles()
                        }
                    };
                    stats[n].miss_cycles += lat;
                }
            }
        }
    }
    MultiProcReport { nodes: stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sys() -> SystemConfig {
        SystemConfig::small() // 4 nodes -> 2x2 torus
    }

    /// Nodes share a block region; writes must invalidate peers.
    #[test]
    fn shared_writes_invalidate_other_nodes() {
        let sys = small_sys();
        let mut traces = Vec::new();
        for n in 0..4 {
            let mut t = Trace::new();
            for i in 0..64u64 {
                // Everyone reads the same shared blocks.
                t.read(0x1, (i % 8) * 64);
                if n == 0 && i % 4 == 0 {
                    t.write(0x2, (i % 8) * 64);
                }
            }
            traces.push(t);
        }
        let report = run_lockstep(&sys, &traces);
        let total = report.total();
        assert!(
            total.invalidations_received > 0,
            "writer must invalidate reader copies: {total:?}"
        );
        // Some misses must be served cache-to-cache.
        assert!(total.from_remote_cache > 0, "{total:?}");
    }

    #[test]
    fn private_traces_have_no_coherence_traffic() {
        let sys = small_sys();
        let traces: Vec<Trace> = (0..4)
            .map(|n| {
                let mut t = Trace::new();
                for i in 0..64u64 {
                    t.read(0x1, (n as u64 + 1) * (1 << 30) + i * 2048);
                }
                t
            })
            .collect();
        let report = run_lockstep(&sys, &traces);
        let total = report.total();
        assert_eq!(total.invalidations_received, 0);
        assert_eq!(total.from_remote_cache, 0);
        assert_eq!(total.from_memory, 4 * 64);
    }

    #[test]
    fn unequal_trace_lengths_complete() {
        let sys = small_sys();
        let mut traces: Vec<Trace> = (0..4).map(|_| Trace::new()).collect();
        traces[0].read(1, 64);
        traces[2].read(1, 128);
        traces[2].read(1, 192);
        let report = run_lockstep(&sys, &traces);
        assert_eq!(report.total().accesses, 3);
    }

    #[test]
    #[should_panic(expected = "one trace per node")]
    fn trace_count_is_validated() {
        run_lockstep(&small_sys(), &[Trace::new()]);
    }
}
