//! Decision-support workloads: TPC-H queries 2, 16, and 17 on DB2.
//!
//! DSS queries are dominated by scans of previously untouched data
//! (Section 2.2: "TMS is mostly ineffective for DSS workloads, which are
//! dominated by scans"), while all scanned pages share the same layout and
//! are traversed by the same code — so SMS-class prediction covers over
//! 60% of misses (Section 5.2). A join component revisits a smaller inner
//! table: mostly cache-resident (so it adds little temporal opportunity),
//! larger for the balanced scan-join query 17.

use rand::Rng;

use stems_trace::Trace;
use stems_types::RegionAddr;

use crate::build::{rng, scatter, splitmix, Interleaver, Visit, VisitAccess};

/// Tuning knobs for a DSS query.
#[derive(Clone, Debug)]
pub struct DssParams {
    /// Scanned pages (each visited exactly once — compulsory).
    pub scan_regions: u64,
    /// Stable layout offsets per page (shared by all pages).
    pub layout_offsets: usize,
    /// Unstable extra offsets per page (page-specific tuple positions).
    pub noise_offsets: usize,
    /// Probability a stable offset is skipped on a given page.
    pub skip_prob: f64,
    /// Probability of swapping adjacent pattern elements (within-page
    /// reorder noise; highest for query 16 per Figure 8).
    pub reorder_prob: f64,
    /// Probability of inserting an inner-join visit after a scan page.
    pub join_prob: f64,
    /// Inner join table size in regions.
    pub join_regions: u64,
    /// Non-memory work before each access.
    pub work: (u16, u16),
    /// Interleaver window / mix.
    pub window: usize,
    /// Interleaver mix probability.
    pub mix: f64,
}

impl DssParams {
    /// TPC-H query 2 (join-dominated, small inner tables).
    pub fn qry2() -> Self {
        DssParams {
            scan_regions: 42_000,
            layout_offsets: 9,
            noise_offsets: 2,
            skip_prob: 0.08,
            reorder_prob: 0.06,
            join_prob: 0.14,
            join_regions: 1800,
            work: (4, 12),
            window: 3,
            mix: 0.35,
        }
    }

    /// TPC-H query 16 (join-dominated, noisier within-page order — the
    /// outlier of Figure 8).
    pub fn qry16() -> Self {
        DssParams {
            reorder_prob: 0.30,
            noise_offsets: 3,
            ..DssParams::qry2()
        }
    }

    /// TPC-H query 17 (balanced scan-join: larger recurring inner table).
    pub fn qry17() -> Self {
        DssParams {
            join_prob: 0.35,
            join_regions: 7000,
            reorder_prob: 0.08,
            ..DssParams::qry2()
        }
    }

    /// Scales trace-length-related sizes by `f`.
    pub fn scaled(mut self, f: f64) -> Self {
        self.scan_regions = ((self.scan_regions as f64 * f).ceil() as u64).max(64);
        self.join_regions = ((self.join_regions as f64 * f).ceil() as u64).max(16);
        self
    }
}

const SCAN_SPACE: u64 = 1 << 35;
const JOIN_SALT: u64 = 11;

/// Generates the trace for a DSS query.
pub fn generate(params: &DssParams, seed: u64) -> Trace {
    let mut r = rng(seed);
    let mut trace = Trace::with_capacity(params.scan_regions as usize * 12);

    // The shared page layout: offset 0 header + stable tuple offsets.
    let layout: Vec<u8> = std::iter::once(0u8)
        .chain((0..params.layout_offsets).map(|k| (1 + (splitmix(k as u64 + 77) % 30)) as u8))
        .collect();

    let mut visits: Vec<Visit> = Vec::new();
    for page in 0..params.scan_regions {
        // Scan pages are fresh: scattered placement in their own space.
        let region = RegionAddr::new(SCAN_SPACE + scatter(page, seed ^ 5, 1 << 26).get());
        let mut offsets: Vec<u8> = layout
            .iter()
            .enumerate()
            .filter(|&(i, _)| i == 0 || !r.gen_bool(params.skip_prob))
            .map(|(_, &o)| o)
            .collect();
        // Page-specific noise tuples (spatially unpredictable).
        for k in 0..params.noise_offsets {
            let o = (1 + (splitmix(page ^ ((k as u64 + 3) << 40)) % 31)) as u8;
            if !offsets.contains(&o) {
                offsets.push(o);
            }
        }
        // Within-page reorder noise (Figure 8): swap adjacent non-trigger
        // elements.
        for i in 2..offsets.len() {
            if r.gen_bool(params.reorder_prob) {
                offsets.swap(i - 1, i);
            }
        }
        let work = r.gen_range(params.work.0..=params.work.1);
        let accesses: Vec<VisitAccess> = offsets
            .iter()
            .enumerate()
            .map(|(i, &offset)| VisitAccess {
                offset,
                pc: 0x50_0000 + (i as u64) * 4,
                write: false,
                work,
            })
            .collect();
        visits.push(Visit {
            region,
            accesses,
            dependent: false,
        });

        if r.gen_bool(params.join_prob) {
            // Inner-table probe: revisits a bounded set of regions
            // (mostly L2-resident unless the inner table is large).
            let inner = scatter(r.gen_range(0..params.join_regions), JOIN_SALT, 1 << 22);
            let base = (splitmix(inner.get()) % 28) as u8;
            let accesses = vec![
                VisitAccess {
                    offset: base,
                    pc: 0x51_0000,
                    write: false,
                    work: 8,
                },
                VisitAccess {
                    offset: base + 2,
                    pc: 0x51_0004,
                    write: false,
                    work: 8,
                },
            ];
            visits.push(Visit {
                region: inner,
                accesses,
                dependent: true,
            });
        }
    }
    Interleaver::new(params.window, params.mix).emit(visits, &mut r, &mut trace);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_per_seed() {
        let p = DssParams::qry2().scaled(0.01);
        assert_eq!(generate(&p, 3), generate(&p, 3));
        assert_ne!(generate(&p, 3), generate(&p, 4));
    }

    #[test]
    fn scan_pages_are_never_revisited() {
        let p = DssParams {
            join_prob: 0.0,
            ..DssParams::qry2().scaled(0.01)
        };
        let t = generate(&p, 1);
        // With no join traffic, each region's accesses form one contiguous
        // episode (modulo the interleaver window): region visit count must
        // equal distinct regions.
        let mut seen = HashSet::new();
        for a in t.iter() {
            seen.insert(a.addr.region());
        }
        assert_eq!(seen.len() as u64, p.scan_regions);
    }

    #[test]
    fn qry17_has_more_join_traffic_than_qry2() {
        let p2 = DssParams::qry2().scaled(0.02);
        let p17 = DssParams::qry17().scaled(0.02);
        let join_accesses = |t: &Trace| {
            t.iter()
                .filter(|a| a.addr.region().get() < SCAN_SPACE)
                .count()
        };
        assert!(join_accesses(&generate(&p17, 2)) > join_accesses(&generate(&p2, 2)));
    }

    #[test]
    fn all_reads_no_writes() {
        let t = generate(&DssParams::qry16().scaled(0.01), 8);
        assert!((t.stats().read_fraction() - 1.0).abs() < 1e-12);
    }
}
