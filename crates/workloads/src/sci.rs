//! Scientific workloads: em3d, ocean, and sparse (Table 1).
//!
//! These provide the paper's frame of reference: iterative kernels whose
//! miss sequences repeat essentially perfectly across iterations, so TMS
//! is near-perfect (4x+ speedups on em3d and sparse, Section 5.6) while
//! SMS struggles where one trigger PC maps to many spatial layouts.

use rand::Rng;

use stems_trace::Trace;
use stems_types::RegionAddr;

use crate::build::{rng, scatter, splitmix, Interleaver, Visit, VisitAccess};

/// em3d: electromagnetic wave propagation on an irregular bipartite graph
/// (3M nodes in the paper; scaled here so one iteration exceeds the L2).
///
/// Each iteration chases the same randomly-scattered node list — a
/// perfectly repetitive *temporal* sequence of dependent misses. Node
/// sizes vary (degree differences), so the single traversal PC maps to
/// many different spatial extents: SMS "cannot disambiguate spatial
/// patterns" (Section 5.2) and STeMS "is unable to choose the best
/// pattern to use for each trigger" (Section 5.5).
#[derive(Clone, Debug)]
pub struct Em3dParams {
    /// Graph nodes.
    pub nodes: u64,
    /// Iterations over the node list.
    pub iterations: usize,
    /// Non-memory work per node (field update computation).
    pub work: (u16, u16),
}

impl Em3dParams {
    /// Paper-shaped defaults (scaled to simulator footprints).
    pub fn default_paper() -> Self {
        Em3dParams {
            // One iteration's triggers must fit the 128K-entry RMOB
            // (Section 4.3's sizing constraint) while the node footprint
            // still exceeds the 8MB L2.
            nodes: 110_000,
            iterations: 6,
            work: (10, 24),
        }
    }

    /// Scales the node count by `f`.
    pub fn scaled(mut self, f: f64) -> Self {
        self.nodes = ((self.nodes as f64 * f).ceil() as u64).max(64);
        self
    }
}

/// Generates the em3d trace.
pub fn em3d(params: &Em3dParams, seed: u64) -> Trace {
    let mut r = rng(seed);
    let mut trace = Trace::with_capacity(params.nodes as usize * params.iterations * 2);
    for _ in 0..params.iterations {
        let mut visits = Vec::with_capacity(params.nodes as usize);
        for n in 0..params.nodes {
            // Node placement and extent are fixed functions of the node:
            // identical across iterations (perfect temporal repetition).
            let region = scatter(n, seed ^ 21, 1 << 24);
            let trigger = (splitmix(n ^ 0xE3D) % 29) as u8;
            let extent = 1 + (splitmix(n ^ 0x7A11) % 3) as u8; // 1-3 blocks
            let work = r.gen_range(params.work.0..=params.work.1);
            let accesses = (0..extent)
                .map(|k| VisitAccess {
                    offset: trigger + k,
                    pc: 0x60_0000 + k as u64 * 4,
                    write: k == 0 && n % 7 == 0,
                    work,
                })
                .collect();
            visits.push(Visit {
                region,
                accesses,
                dependent: true, // pointer chase through the node list
            });
        }
        Interleaver::new(1, 0.0).emit(visits, &mut r, &mut trace);
    }
    trace
}

/// ocean: regular grid relaxation (1026x1026 in the paper).
///
/// Dense sequential sweeps over two grids: every predictor (including the
/// baseline stride prefetcher) does well; accesses are independent, so
/// out-of-order execution already overlaps much of the latency.
#[derive(Clone, Debug)]
pub struct OceanParams {
    /// Grid size in regions (per array).
    pub grid_regions: u64,
    /// Relaxation sweeps.
    pub sweeps: usize,
    /// Non-memory work per block.
    pub work: (u16, u16),
}

impl OceanParams {
    /// Paper-shaped defaults.
    pub fn default_paper() -> Self {
        OceanParams {
            grid_regions: 6144,
            sweeps: 4,
            work: (3, 8),
        }
    }

    /// Scales the grid by `f`.
    pub fn scaled(mut self, f: f64) -> Self {
        self.grid_regions = ((self.grid_regions as f64 * f).ceil() as u64).max(16);
        self
    }
}

/// Generates the ocean trace.
pub fn ocean(params: &OceanParams, seed: u64) -> Trace {
    let mut r = rng(seed);
    let mut trace = Trace::with_capacity(params.grid_regions as usize * 32 * params.sweeps * 2);
    // Two arrays at fixed contiguous bases (grids are contiguous memory).
    let bases = [1u64 << 24, 1u64 << 25];
    for sweep in 0..params.sweeps {
        let mut visits = Vec::new();
        for g in 0..params.grid_regions {
            for (a, &base) in bases.iter().enumerate() {
                let region = RegionAddr::new(base + g);
                let work = r.gen_range(params.work.0..=params.work.1);
                let _ = sweep; // placement and kinds identical every sweep
                let accesses = (0..32u8)
                    .map(|k| VisitAccess {
                        offset: k,
                        pc: 0x70_0000 + a as u64 * 0x100,
                        // A fixed subset of the second array is written,
                        // so the read-miss sequence repeats across sweeps.
                        write: a == 1 && k % 8 == 7,
                        work,
                    })
                    .collect();
                visits.push(Visit {
                    region,
                    accesses,
                    dependent: false,
                });
            }
        }
        // The interleaver RNG resets every sweep so the global access
        // order repeats exactly across sweeps (TMS is near-perfect on
        // scientific kernels, Section 5.2).
        let mut sweep_rng = rng(seed ^ 0x0CEA);
        Interleaver::new(2, 0.4).emit(visits, &mut sweep_rng, &mut trace);
    }
    trace
}

/// sparse: sparse matrix-vector multiply (4096x4096 in the paper).
///
/// The matrix streams through sequentially each iteration; the x-vector
/// gathers are scattered and *dependent* on the column-index loads.
/// The global miss order repeats exactly (TMS near-perfect), but gather
/// clusters sharing a prediction index come in two different
/// within-region orders, so the PST's delta sequences keep toggling — the
/// paper's stated reason STeMS loses coverage on sparse (Section 5.5).
#[derive(Clone, Debug)]
pub struct SparseParams {
    /// Matrix stream size in regions.
    pub matrix_regions: u64,
    /// x-vector size in regions.
    pub x_regions: u64,
    /// Iterations (SpMV repetitions).
    pub iterations: usize,
    /// Gather clusters per matrix region.
    pub gathers_per_region: usize,
    /// Non-memory work per access.
    pub work: (u16, u16),
}

impl SparseParams {
    /// Paper-shaped defaults.
    pub fn default_paper() -> Self {
        SparseParams {
            matrix_regions: 8192,
            x_regions: 4096,
            iterations: 5,
            gathers_per_region: 2,
            work: (4, 10),
        }
    }

    /// Scales both footprints by `f`.
    pub fn scaled(mut self, f: f64) -> Self {
        self.matrix_regions = ((self.matrix_regions as f64 * f).ceil() as u64).max(32);
        self.x_regions = ((self.x_regions as f64 * f).ceil() as u64).max(16);
        self
    }
}

/// Generates the sparse trace.
pub fn sparse(params: &SparseParams, seed: u64) -> Trace {
    let mut r = rng(seed);
    let mut trace = Trace::with_capacity(
        params.matrix_regions as usize * (16 + params.gathers_per_region * 3) * params.iterations,
    );
    let matrix_base = 1u64 << 26;
    for iter in 0..params.iterations {
        let mut visits = Vec::new();
        for m in 0..params.matrix_regions {
            // Matrix rows: 16 sequential blocks per region (values +
            // column indices), same order every iteration.
            let work = r.gen_range(params.work.0..=params.work.1);
            let accesses = (0..16u8)
                .map(|k| VisitAccess {
                    offset: k * 2,
                    pc: 0x75_0000 + (k as u64 % 4) * 4,
                    write: false,
                    work,
                })
                .collect();
            visits.push(Visit {
                region: RegionAddr::new(matrix_base + m),
                accesses,
                dependent: false,
            });
            // Gather clusters: fixed x-regions and offsets per matrix
            // region, but the within-region *order* toggles with
            // iteration parity.
            for gather in 0..params.gathers_per_region {
                let key = m ^ ((gather as u64 + 1) << 32);
                let x_region = scatter(splitmix(key) % params.x_regions, seed ^ 31, 1 << 22);
                let base_off = (splitmix(key ^ 0xF00) % 26) as u8;
                let mut offsets = [base_off, base_off + 2, base_off + 5];
                if splitmix(key ^ 0x0070_661E) % 2 == 1 {
                    // Half the clusters use the reversed order: identical
                    // every iteration (temporal repetition intact), but
                    // the shared PST entry sees two delta sequences.
                    offsets.reverse();
                }
                let accesses = offsets
                    .iter()
                    .map(|&offset| VisitAccess {
                        offset,
                        pc: 0x76_0000 + gather as u64 * 4,
                        write: false,
                        work: 4,
                    })
                    .collect();
                visits.push(Visit {
                    region: x_region,
                    accesses,
                    dependent: true, // address from the column-index load
                });
            }
        }
        // Deterministic per-iteration interleaving: the global order
        // repeats exactly across iterations.
        let mut iter_rng = rng(seed ^ 0x59A);
        let _ = (iter, &mut r);
        Interleaver::new(2, 0.3).emit(visits, &mut iter_rng, &mut trace);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn em3d_iterations_repeat_the_same_address_sequence() {
        let p = Em3dParams::default_paper().scaled(0.01);
        let t = em3d(&p, 3);
        let per_iter = t.len() / p.iterations;
        let first: Vec<u64> = t.iter().take(per_iter).map(|a| a.addr.get()).collect();
        let second: Vec<u64> = t
            .iter()
            .skip(per_iter)
            .take(per_iter)
            .map(|a| a.addr.get())
            .collect();
        assert_eq!(first, second, "em3d miss sequence must repeat exactly");
    }

    #[test]
    fn em3d_is_dependence_dominated() {
        let p = Em3dParams::default_paper().scaled(0.01);
        let s = em3d(&p, 3).stats();
        assert!(s.dependent as f64 / s.accesses as f64 > 0.3, "{s}");
    }

    #[test]
    fn ocean_is_sequential_and_dense() {
        let p = OceanParams::default_paper().scaled(0.02);
        let t = ocean(&p, 1);
        // Every touched region must see all 32 offsets.
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for a in t.iter() {
            *counts.entry(a.addr.region().get()).or_default() |=
                1 << a.addr.block().offset_in_region().get();
        }
        assert!(counts.values().all(|&m| m == u32::MAX));
    }

    #[test]
    fn sparse_iterations_repeat_but_cluster_orders_differ() {
        let p = SparseParams::default_paper().scaled(0.01);
        let t = sparse(&p, 9);
        let gathers: Vec<(u64, u8)> = t
            .iter()
            .filter(|a| a.pc.get() >= 0x76_0000)
            .map(|a| {
                (
                    a.addr.region().get(),
                    a.addr.block().offset_in_region().get(),
                )
            })
            .collect();
        // The global gather order repeats exactly across iterations (TMS
        // near-perfect on sparse)...
        let per_iter = gathers.len() / p.iterations;
        assert_eq!(&gathers[..per_iter], &gathers[per_iter..2 * per_iter]);
        // ...but clusters sharing the prediction index use two different
        // within-cluster orders (the PST's toggling delta sequences):
        // both ascending and descending offset runs must exist.
        let mut ascending = false;
        let mut descending = false;
        for w in gathers[..per_iter].windows(3) {
            if w[0].0 == w[1].0 && w[1].0 == w[2].0 {
                if w[0].1 < w[1].1 && w[1].1 < w[2].1 {
                    ascending = true;
                } else if w[0].1 > w[1].1 && w[1].1 > w[2].1 {
                    descending = true;
                }
            }
        }
        assert!(
            ascending && descending,
            "both cluster orders must occur (asc={ascending}, desc={descending})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = SparseParams::default_paper().scaled(0.005);
        assert_eq!(sparse(&p, 5), sparse(&p, 5));
        let q = OceanParams::default_paper().scaled(0.01);
        assert_eq!(ocean(&q, 5), ocean(&q, 5));
        let e = Em3dParams::default_paper().scaled(0.005);
        assert_eq!(em3d(&e, 5), em3d(&e, 5));
    }
}
