//! Transaction-template workloads: OLTP (TPC-C on DB2/Oracle) and web
//! serving (SPECweb on Apache/Zeus).
//!
//! Built from the paper's characterization:
//!
//! * transactions re-execute a library of *templates* — fixed sequences of
//!   buffer-pool page visits reached by pointer chasing (index traversal),
//!   giving **temporal** repetition of the miss sequence (Section 2.1);
//! * within a page, the same code touches the same structural offsets
//!   (header, lock, slot array, fields), giving PC-correlated **spatial**
//!   patterns (Section 2.3, Figure 2);
//! * each page also has idiosyncratic offsets (its own record positions):
//!   temporally repetitive but spatially unstable — TMS-only fuel;
//! * some visits touch *fresh* pages with the common layout (new
//!   connection buffers, appended pages): compulsory misses only SMS-class
//!   prediction can cover;
//! * and a fraction of visits is simply unpredictable (hash probes,
//!   private working state) — the "neither" fraction of Figure 6.

use rand::rngs::StdRng;
use rand::Rng;

use stems_trace::Trace;
use stems_types::RegionAddr;

use crate::build::{rng, scatter, splitmix, Interleaver, Visit, VisitAccess};

/// Tuning knobs for a template workload.
#[derive(Clone, Debug)]
pub struct CommercialParams {
    /// Number of distinct transaction templates.
    pub templates: usize,
    /// Page visits per template.
    pub template_len: usize,
    /// Hot buffer-pool size in regions (template pages are drawn here).
    pub hot_regions: u64,
    /// Cold pool for unpredictable visits.
    pub cold_regions: u64,
    /// Total template visits to emit (trace-length driver).
    pub visits: usize,
    /// Distinct logical tables (layout families).
    pub tables: usize,
    /// Stable structural offsets per table layout.
    pub layout_offsets: usize,
    /// Per-visit record offsets (fixed per template step, unstable per
    /// spatial index).
    pub record_offsets: usize,
    /// Fraction of pages with an idiosyncratic offset (touched on every
    /// visit of such a page).
    pub idio_prob: f64,
    /// Probability of a per-execution volatile offset (unpredictable).
    pub volatile_prob: f64,
    /// Probability of inserting a fresh common-layout page visit.
    pub fresh_prob: f64,
    /// Probability of inserting an unpredictable visit.
    pub random_prob: f64,
    /// Probability a template pick comes from the hot subset.
    pub hot_template_frac: f64,
    /// Size of the hot template subset.
    pub hot_templates: usize,
    /// Probability a template visit is skipped (sequence glitch).
    pub glitch_skip: f64,
    /// Probability a template visit is pointer-chased from the previous.
    pub dependent: f64,
    /// Probability an access is a store.
    pub write_prob: f64,
    /// Non-memory work before each access (uniform range).
    pub work: (u16, u16),
    /// Interleaver window (live visits).
    pub window: usize,
    /// Interleaver mix probability.
    pub mix: f64,
}

impl CommercialParams {
    /// TPC-C on DB2 (Table 1: 100 warehouses, 450MB buffer pool) — scaled
    /// so the recurring working set exceeds the 8MB L2.
    pub fn db2() -> Self {
        CommercialParams {
            templates: 3600,
            template_len: 14,
            hot_regions: 96 * 1024,
            cold_regions: 1 << 22,
            visits: 260_000,
            tables: 4,
            layout_offsets: 3,
            record_offsets: 2,
            idio_prob: 0.8,
            volatile_prob: 0.4,
            fresh_prob: 0.05,
            random_prob: 0.35,
            hot_template_frac: 0.85,
            hot_templates: 2200,
            glitch_skip: 0.015,
            dependent: 0.9,
            write_prob: 0.12,
            work: (6, 18),
            window: 2,
            mix: 0.3,
        }
    }

    /// TPC-C on Oracle (1.4GB SGA): same structure, more computation per
    /// access (the paper notes Oracle spends only a quarter of its time on
    /// off-chip misses, compressing all speedups).
    pub fn oracle() -> Self {
        CommercialParams {
            work: (24, 56),
            random_prob: 0.40,
            idio_prob: 0.75,
            ..CommercialParams::db2()
        }
    }

    /// SPECweb on Apache: denser spatial patterns (response buffers, file
    /// cache), more fresh pages, shorter dependence chains.
    pub fn apache() -> Self {
        CommercialParams {
            templates: 2400,
            template_len: 10,
            hot_regions: 80 * 1024,
            visits: 190_000,
            tables: 5,
            layout_offsets: 7,
            record_offsets: 2,
            idio_prob: 0.45,
            volatile_prob: 0.55,
            fresh_prob: 0.22,
            random_prob: 0.25,
            hot_templates: 1500,
            dependent: 0.45,
            write_prob: 0.10,
            work: (8, 20),
            window: 3,
            mix: 0.35,
            ..CommercialParams::db2()
        }
    }

    /// SPECweb on Zeus: like Apache with a leaner event-driven engine
    /// (fewer unpredictable visits, more locality, fewer off-chip stalls).
    pub fn zeus() -> Self {
        CommercialParams {
            random_prob: 0.16,
            fresh_prob: 0.25,
            work: (12, 28),
            ..CommercialParams::apache()
        }
    }

    /// Scales trace-length-related sizes by `f` (for tests and benches).
    pub fn scaled(mut self, f: f64) -> Self {
        let s = |x: usize| ((x as f64 * f).ceil() as usize).max(8);
        self.templates = s(self.templates);
        self.hot_templates = s(self.hot_templates).min(self.templates);
        self.visits = s(self.visits);
        self.hot_regions = ((self.hot_regions as f64 * f).ceil() as u64).max(64);
        self
    }
}

/// Address-space salts keeping the pools disjoint.
const HOT_SALT: u64 = 1;
const COLD_SALT: u64 = 2;
const FRESH_SALT: u64 = 3;
/// Fresh/cold pages live in their own huge spaces above the hot pool.
const FRESH_SPACE: u64 = 1 << 34;

struct TemplateStep {
    page: u64,
    table: usize,
    record_offsets: Vec<u8>,
}

/// Generates the trace for a template workload.
pub fn generate(params: &CommercialParams, seed: u64) -> Trace {
    let mut r = rng(seed);
    let mut trace = Trace::with_capacity(params.visits * 6);

    // Per-table stable layouts: offset 0 is the trigger (page header);
    // the remaining structural offsets are fixed per table.
    let layouts: Vec<Vec<u8>> = (0..params.tables)
        .map(|t| {
            let mut offsets = vec![0u8];
            for k in 0..params.layout_offsets {
                offsets.push((1 + (splitmix((t * 37 + k * 7 + 1) as u64) % 30)) as u8);
            }
            offsets.dedup();
            offsets
        })
        .collect();

    // Build templates: fixed page sequences with fixed per-step record
    // offsets (so the miss sequence repeats temporally).
    let templates: Vec<Vec<TemplateStep>> = (0..params.templates)
        .map(|t| {
            (0..params.template_len)
                .map(|j| {
                    let key = (t * params.template_len + j) as u64;
                    let page =
                        splitmix(key.wrapping_mul(31).wrapping_add(seed)) % params.hot_regions;
                    let table = (splitmix(key ^ 0xABCD) % params.tables as u64) as usize;
                    let record_offsets = (0..params.record_offsets)
                        .map(|k| (4 + (splitmix(key ^ (k as u64 + 1)) % 28)) as u8)
                        .collect();
                    TemplateStep {
                        page,
                        table,
                        record_offsets,
                    }
                })
                .collect()
        })
        .collect();

    let executions = params.visits / params.template_len.max(1);
    let mut fresh_counter: u64 = 0;
    let interleaver = Interleaver::new(params.window, params.mix);
    for _ in 0..executions {
        let t = if r.gen_bool(params.hot_template_frac) {
            r.gen_range(0..params.hot_templates.min(params.templates))
        } else {
            r.gen_range(0..params.templates)
        };
        let mut visits: Vec<Visit> = Vec::new();
        let mut noise: Vec<Visit> = Vec::new();
        for step in &templates[t] {
            if r.gen_bool(params.glitch_skip) {
                continue;
            }
            visits.push(template_visit(params, &layouts, step, &mut r));
            if r.gen_bool(params.volatile_prob) {
                // A volatile touch of the page at a fresh random offset:
                // predictable by neither technique. Emitted outside the
                // deterministic interleave so the repeating body's global
                // order is undisturbed.
                noise.push(Visit::simple(
                    scatter(step.page, HOT_SALT, params.hot_regions * 16),
                    &[(r.gen_range(1..32), table_pc(step.table, 28))],
                    8,
                ));
            }
            if r.gen_bool(params.fresh_prob) {
                noise.push(fresh_visit(params, &layouts, &mut fresh_counter));
            }
            if r.gen_bool(params.random_prob) {
                noise.push(random_visit(params, &mut r));
            }
        }
        // The interleaving of concurrent generations is a property of the
        // transaction's code path, so it repeats per template: reseed the
        // interleaver per execution to keep the miss order repetitive.
        // Noise visits (fresh pages, hash probes) follow the transaction
        // body so they do not perturb its repeating interleave pattern.
        let mut exec_rng = rng(splitmix(t as u64 ^ seed ^ 0x1EAF));
        interleaver.emit(visits, &mut exec_rng, &mut trace);
        interleaver.emit(noise, &mut r, &mut trace);
    }
    trace
}

fn table_pc(table: usize, field: usize) -> u64 {
    0x40_0000 + (table as u64) * 0x100 + (field as u64) * 4
}

fn template_visit(
    params: &CommercialParams,
    layouts: &[Vec<u8>],
    step: &TemplateStep,
    r: &mut StdRng,
) -> Visit {
    let region = scatter(step.page, HOT_SALT, params.hot_regions * 16);
    let mut accesses = Vec::new();
    let work = r.gen_range(params.work.0..=params.work.1);
    for (field, &offset) in layouts[step.table].iter().enumerate() {
        accesses.push(VisitAccess {
            offset,
            pc: table_pc(step.table, field),
            write: false,
            work,
        });
    }
    // Per-step record offsets: fixed across executions (temporal), but
    // different per template step (spatially unstable for the PC index).
    // Write/read is a fixed property of the step so the *read-miss*
    // sequence repeats too.
    for (k, &offset) in step.record_offsets.iter().enumerate() {
        let write = (splitmix(step.page ^ ((k as u64 + 9) << 48)) % 1000) as f64 / 1000.0
            < params.write_prob;
        accesses.push(VisitAccess {
            offset,
            pc: table_pc(step.table, 16 + k),
            write,
            work,
        });
    }
    // Page-idiosyncratic offset: a fixed function of the page, touched on
    // a fixed (per page) subset of visits — recurs temporally, never
    // stabilizes spatially.
    if (splitmix(step.page ^ 0x1D_1055) % 1000) as f64 / 1000.0 < params.idio_prob {
        let offset = (4 + (splitmix(step.page ^ 0x1D10) % 28)) as u8;
        accesses.push(VisitAccess {
            offset,
            pc: table_pc(step.table, 24),
            write: false,
            work,
        });
    }

    let mut v = Visit {
        region,
        accesses,
        dependent: false,
    };
    if r.gen_bool(params.dependent) {
        v = v.chained();
    }
    v
}

fn fresh_visit(_params: &CommercialParams, layouts: &[Vec<u8>], counter: &mut u64) -> Visit {
    *counter += 1;
    // Never-seen region (compulsory), laid out like table 0 and touched by
    // table 0's code: spatially predictable, temporally impossible.
    let region = RegionAddr::new(FRESH_SPACE + scatter(*counter, FRESH_SALT, 1 << 24).get());
    let parts: Vec<(u8, u64)> = layouts[0]
        .iter()
        .enumerate()
        .map(|(field, &o)| (o, table_pc(0, field)))
        .collect();
    Visit::simple(region, &parts, 10)
}

fn random_visit(params: &CommercialParams, r: &mut StdRng) -> Visit {
    // Unpredictable: random cold page, random offsets, from a pool of
    // "miscellaneous" PCs.
    let region = scatter(r.gen::<u64>(), COLD_SALT, params.cold_regions);
    let n = r.gen_range(1..=3);
    let mut accesses = Vec::new();
    for _ in 0..n {
        accesses.push(VisitAccess {
            offset: r.gen_range(0..32),
            pc: 0x80_0000 + r.gen_range(0u64..64) * 4,
            write: r.gen_bool(0.1),
            work: r.gen_range(params.work.0..=params.work.1),
        });
    }
    Visit {
        region,
        accesses,
        dependent: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db2_trace_is_deterministic() {
        let p = CommercialParams::db2().scaled(0.02);
        let a = generate(&p, 42);
        let b = generate(&p, 42);
        assert_eq!(a, b);
        assert_ne!(a, generate(&p, 43));
    }

    #[test]
    fn db2_has_expected_shape() {
        let p = CommercialParams::db2().scaled(0.05);
        let t = generate(&p, 1);
        let stats = t.stats();
        assert!(stats.accesses > 10_000, "{stats}");
        // Pointer chasing must be present for TMS to matter.
        assert!(
            stats.dependent as f64 / stats.accesses as f64 > 0.05,
            "{stats}"
        );
        // Some writes, mostly reads.
        assert!(stats.read_fraction() > 0.8 && stats.read_fraction() < 1.0);
    }

    #[test]
    fn oracle_has_more_work_per_access() {
        let p_db2 = CommercialParams::db2().scaled(0.02);
        let p_ora = CommercialParams::oracle().scaled(0.02);
        let w_db2: u64 = generate(&p_db2, 5)
            .iter()
            .map(|a| a.work_before as u64)
            .sum();
        let w_ora: u64 = generate(&p_ora, 5)
            .iter()
            .map(|a| a.work_before as u64)
            .sum();
        // Normalize by length.
        let l_db2 = generate(&p_db2, 5).len() as f64;
        let l_ora = generate(&p_ora, 5).len() as f64;
        assert!(w_ora as f64 / l_ora > 1.5 * (w_db2 as f64 / l_db2));
    }

    #[test]
    fn apache_touches_fresh_regions() {
        let p = CommercialParams::apache().scaled(0.03);
        let t = generate(&p, 9);
        let fresh = t
            .iter()
            .filter(|a| a.addr.region().get() >= FRESH_SPACE)
            .count();
        assert!(fresh > 0, "web workloads must include compulsory pages");
    }
}
