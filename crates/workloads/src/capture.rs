//! Capture path: generate a workload trace and persist it to the
//! chunked trace store (`stems_trace::store`).
//!
//! The paper's methodology is capture-once, analyze-many (Section 5.1):
//! FLEXUS collects each application's access trace once and every
//! predictor study replays it. This module is our equivalent for the
//! synthetic generators — `tracegen capture` persists a workload at a
//! chosen scale/seed, and the harness replays the file instead of
//! regenerating, so figure runs are decoupled from generator cost and a
//! captured corpus doubles as a regression fixture.

use std::path::Path;

use stems_trace::store::{StoreSink, StoreSummary, SyncPolicy, TraceStoreError, TraceWriter};

use crate::Workload;

/// Canonical file name for a workload's captured trace inside a corpus
/// directory: the lower-cased display name with a `.stems` extension
/// (`db2.stems`, `qry16.stems`, ...). `tracegen capture-all` writes
/// these names and the harness's `--trace-dir` replay looks them up.
pub fn trace_file_name(workload: Workload) -> String {
    format!("{}.stems", workload.name().to_ascii_lowercase())
}

/// Generates `workload` at `(scale, seed)` and streams it into an
/// already-configured [`TraceWriter`] in frame-sized chunks. The writer
/// is *not* finished — callers batch several captures into one sink or
/// apply their own [`SyncPolicy`] before finishing.
pub fn capture_into<W: StoreSink>(
    workload: Workload,
    scale: f64,
    seed: u64,
    writer: &mut TraceWriter<W>,
) -> Result<u64, TraceStoreError> {
    let trace = workload.generate_scaled(scale, seed);
    writer.write_accesses(trace.as_slice())?;
    Ok(trace.len() as u64)
}

/// Generates `workload` at `(scale, seed)` and persists it to `path`
/// with `sync` durability, returning the store totals.
pub fn capture_to_path<P: AsRef<Path>>(
    workload: Workload,
    scale: f64,
    seed: u64,
    path: P,
    sync: SyncPolicy,
) -> Result<StoreSummary, TraceStoreError> {
    let mut writer = TraceWriter::create(path)?.with_sync_policy(sync);
    capture_into(workload, scale, seed, &mut writer)?;
    writer.finish()
}

impl Workload {
    /// Captures this workload's trace at `(scale, seed)` to `path`
    /// (see [`capture_to_path`]).
    pub fn capture_scaled<P: AsRef<Path>>(
        self,
        scale: f64,
        seed: u64,
        path: P,
    ) -> Result<StoreSummary, TraceStoreError> {
        capture_to_path(self, scale, seed, path, SyncPolicy::OnFinish)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stems_trace::store::{read_store, TraceWriter};

    #[test]
    fn capture_round_trips_the_generated_trace() {
        let w = Workload::Qry2;
        let expected = w.generate_scaled(0.004, 11);
        let mut buf = Vec::new();
        let mut writer = TraceWriter::new(&mut buf).unwrap().with_frame_capacity(256);
        let n = capture_into(w, 0.004, 11, &mut writer).unwrap();
        let summary = writer.finish().unwrap();
        drop(writer);
        assert_eq!(n, expected.len() as u64);
        assert_eq!(summary.records, n);
        assert_eq!(read_store(buf.as_slice()).unwrap(), expected);
    }

    #[test]
    fn file_names_are_stable_and_collision_free() {
        let names: std::collections::HashSet<String> =
            Workload::all().into_iter().map(trace_file_name).collect();
        assert_eq!(names.len(), Workload::all().len());
        assert!(names.contains("db2.stems"));
        assert!(names.contains("qry16.stems"));
    }
}
