//! Synthetic workload generators for the STeMS reproduction.
//!
//! The paper evaluates on proprietary commercial applications (TPC-C on
//! IBM DB2 and Oracle, TPC-H queries on DB2, SPECweb on Apache and Zeus)
//! plus three scientific kernels (Table 1). None of those can be run here,
//! so each is replaced by a deterministic generator that reproduces the
//! *memory behaviour* the paper attributes to it — temporal repetition,
//! PC-correlated spatial layouts, dependence structure, compulsory-miss
//! fractions, and footprints relative to the 8MB L2 (see DESIGN.md §3).
//!
//! # Example
//!
//! ```
//! use stems_workloads::Workload;
//!
//! let trace = Workload::Em3d.generate_scaled(0.01, 42);
//! assert!(!trace.is_empty());
//! assert_eq!(Workload::all().len(), 10);
//! ```

pub mod build;
pub mod capture;
pub mod commercial;
pub mod dss;
pub mod sci;

use stems_trace::Trace;

pub use build::{Interleaver, Visit, VisitAccess};
pub use capture::{capture_into, capture_to_path, trace_file_name};
pub use commercial::CommercialParams;
pub use dss::DssParams;
pub use sci::{Em3dParams, OceanParams, SparseParams};

/// Workload category (the grouping used along the x-axis of every figure).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// SPECweb (Apache, Zeus).
    Web,
    /// TPC-C (DB2, Oracle).
    Oltp,
    /// TPC-H on DB2 (queries 2, 16, 17).
    Dss,
    /// em3d, ocean, sparse.
    Scientific,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Category::Web => write!(f, "Web"),
            Category::Oltp => write!(f, "OLTP"),
            Category::Dss => write!(f, "DSS"),
            Category::Scientific => write!(f, "Scientific"),
        }
    }
}

/// The paper's ten applications (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Apache HTTP Server v2.0 under SPECweb99.
    Apache,
    /// Zeus Web Server v4.3 under SPECweb99.
    Zeus,
    /// TPC-C v3.0 on IBM DB2 v8 ESE.
    Db2,
    /// TPC-C v3.0 on Oracle 10g.
    Oracle,
    /// TPC-H query 2 on DB2.
    Qry2,
    /// TPC-H query 16 on DB2.
    Qry16,
    /// TPC-H query 17 on DB2.
    Qry17,
    /// em3d electromagnetic kernel.
    Em3d,
    /// ocean current simulation.
    Ocean,
    /// sparse matrix-vector multiply.
    Sparse,
}

impl Workload {
    /// All ten workloads in the paper's presentation order.
    pub fn all() -> [Workload; 10] {
        [
            Workload::Apache,
            Workload::Zeus,
            Workload::Db2,
            Workload::Oracle,
            Workload::Qry2,
            Workload::Qry16,
            Workload::Qry17,
            Workload::Em3d,
            Workload::Ocean,
            Workload::Sparse,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Apache => "Apache",
            Workload::Zeus => "Zeus",
            Workload::Db2 => "DB2",
            Workload::Oracle => "Oracle",
            Workload::Qry2 => "Qry2",
            Workload::Qry16 => "Qry16",
            Workload::Qry17 => "Qry17",
            Workload::Em3d => "em3d",
            Workload::Ocean => "ocean",
            Workload::Sparse => "sparse",
        }
    }

    /// The workload's category.
    pub fn category(self) -> Category {
        match self {
            Workload::Apache | Workload::Zeus => Category::Web,
            Workload::Db2 | Workload::Oracle => Category::Oltp,
            Workload::Qry2 | Workload::Qry16 | Workload::Qry17 => Category::Dss,
            Workload::Em3d | Workload::Ocean | Workload::Sparse => Category::Scientific,
        }
    }

    /// Whether this workload uses the scientific prefetcher configuration
    /// (stream lookahead 12 instead of 8, Section 4.3).
    pub fn is_scientific(self) -> bool {
        self.category() == Category::Scientific
    }

    /// Coherence-invalidation injection rate standing in for the other 15
    /// nodes' writes (OLTP shares the buffer pool heavily; DSS scans
    /// private data; em3d has 15% remote nodes).
    pub fn invalidation_rate(self) -> f64 {
        match self.category() {
            Category::Oltp => 3e-4,
            Category::Web => 1.5e-4,
            Category::Dss => 1e-5,
            Category::Scientific => match self {
                Workload::Em3d => 1e-4,
                _ => 3e-5,
            },
        }
    }

    /// Generates the full-size trace for `seed`.
    pub fn generate(self, seed: u64) -> Trace {
        self.generate_scaled(1.0, seed)
    }

    /// Generates a trace with footprints scaled by `scale` (1.0 = the
    /// evaluation size; smaller values for tests and benches).
    pub fn generate_scaled(self, scale: f64, seed: u64) -> Trace {
        match self {
            Workload::Apache => {
                commercial::generate(&CommercialParams::apache().scaled(scale), seed)
            }
            Workload::Zeus => commercial::generate(&CommercialParams::zeus().scaled(scale), seed),
            Workload::Db2 => commercial::generate(&CommercialParams::db2().scaled(scale), seed),
            Workload::Oracle => {
                commercial::generate(&CommercialParams::oracle().scaled(scale), seed)
            }
            Workload::Qry2 => dss::generate(&DssParams::qry2().scaled(scale), seed),
            Workload::Qry16 => dss::generate(&DssParams::qry16().scaled(scale), seed),
            Workload::Qry17 => dss::generate(&DssParams::qry17().scaled(scale), seed),
            Workload::Em3d => sci::em3d(&Em3dParams::default_paper().scaled(scale), seed),
            Workload::Ocean => sci::ocean(&OceanParams::default_paper().scaled(scale), seed),
            Workload::Sparse => sci::sparse(&SparseParams::default_paper().scaled(scale), seed),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_generates_nonempty_deterministic_traces() {
        for w in Workload::all() {
            let a = w.generate_scaled(0.01, 7);
            let b = w.generate_scaled(0.01, 7);
            assert!(!a.is_empty(), "{w} produced an empty trace");
            assert_eq!(a, b, "{w} is not deterministic");
        }
    }

    #[test]
    fn names_and_categories_are_stable() {
        assert_eq!(Workload::Db2.name(), "DB2");
        assert_eq!(Workload::Qry16.category(), Category::Dss);
        assert!(Workload::Sparse.is_scientific());
        assert!(!Workload::Apache.is_scientific());
    }

    #[test]
    fn scientific_traces_are_dependence_heavy_where_expected() {
        let em3d = Workload::Em3d.generate_scaled(0.005, 1).stats();
        let ocean = Workload::Ocean.generate_scaled(0.02, 1).stats();
        assert!(em3d.dependent > 0);
        assert_eq!(ocean.dependent, 0, "ocean sweeps are independent");
    }
}
