//! Shared building blocks for the synthetic workload generators.
//!
//! All generators express their memory behaviour as a stream of
//! [`Visit`]s — one spatial-region episode each (a page touched by a
//! transaction step, a grid tile of a sweep, a graph node...). The
//! [`Interleaver`] merges consecutive visits into a single global access
//! order with bounded overlap, reproducing the paper's observation that
//! several spatial generations are live at once with their accesses
//! interleaved (Section 3.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

use stems_trace::{Access, AccessKind, Dependence, Trace};
use stems_types::{Addr, BlockOffset, Pc, RegionAddr};

/// One access within a visit.
#[derive(Clone, Copy, Debug)]
pub struct VisitAccess {
    /// Block offset within the visit's region.
    pub offset: u8,
    /// PC of the access instruction.
    pub pc: u64,
    /// Store instead of load.
    pub write: bool,
    /// Non-memory instructions preceding this access.
    pub work: u16,
}

/// One spatial-region episode.
#[derive(Clone, Debug)]
pub struct Visit {
    /// The region visited.
    pub region: RegionAddr,
    /// Accesses in intended order (offsets may repeat blocks).
    pub accesses: Vec<VisitAccess>,
    /// Whether the visit's first access depends on the previous access
    /// (pointer chase: the region's address was loaded from memory).
    pub dependent: bool,
}

impl Visit {
    /// Creates a visit to `region` from `(offset, pc)` pairs with uniform
    /// `work` and no writes.
    pub fn simple(region: RegionAddr, parts: &[(u8, u64)], work: u16) -> Self {
        Visit {
            region,
            accesses: parts
                .iter()
                .map(|&(offset, pc)| VisitAccess {
                    offset,
                    pc,
                    write: false,
                    work,
                })
                .collect(),
            dependent: false,
        }
    }

    /// Marks the visit as pointer-chased.
    pub fn chained(mut self) -> Self {
        self.dependent = true;
        self
    }
}

/// Deterministically scatters an index over a region space of
/// `space_regions`, so logically consecutive entities live at unrelated
/// physical regions (buffer-pool page placement, Section 3).
pub fn scatter(index: u64, salt: u64, space_regions: u64) -> RegionAddr {
    RegionAddr::new(splitmix(index.wrapping_add(salt.wrapping_mul(0x9E37_79B9))) % space_regions)
}

/// SplitMix64 — a fixed-point-free deterministic scrambler.
pub fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Merges a visit stream into a trace with up to `window` visits live at
/// once. Each step, the front visit continues with probability
/// `1 - mix`; otherwise a later live visit advances, interleaving the
/// generations. `window == 1` preserves visit order exactly.
pub struct Interleaver {
    window: usize,
    /// Probability of deferring to a later live visit at each step.
    mix: f64,
}

impl Interleaver {
    /// Creates an interleaver with `window` live visits and `mix`
    /// interleave probability.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize, mix: f64) -> Self {
        assert!(window > 0, "interleave window must be nonzero");
        Interleaver { window, mix }
    }

    /// Emits `visits` into `trace`, consuming the iterator.
    pub fn emit<I: IntoIterator<Item = Visit>>(
        &self,
        visits: I,
        rng: &mut StdRng,
        trace: &mut Trace,
    ) {
        let mut source = visits.into_iter();
        let mut live: VecDeque<(Visit, usize, bool)> = VecDeque::new(); // (visit, next_idx, started)
        loop {
            while live.len() < self.window {
                match source.next() {
                    Some(v) if !v.accesses.is_empty() => live.push_back((v, 0, false)),
                    Some(_) => continue,
                    None => break,
                }
            }
            if live.is_empty() {
                break;
            }
            // Pick which live visit advances: geometric preference for the
            // oldest so global order roughly follows visit order.
            let mut idx = 0;
            while idx + 1 < live.len() && rng.gen_bool(self.mix) {
                idx += 1;
            }
            let (visit, cursor, started) = &mut live[idx];
            let acc = visit.accesses[*cursor];
            let dep = if !*started && visit.dependent {
                Dependence::OnPrevAccess
            } else {
                Dependence::Independent
            };
            *started = true;
            let addr = Addr::new(
                visit
                    .region
                    .block_at(BlockOffset::new(acc.offset))
                    .base()
                    .get(),
            );
            trace.push(Access {
                pc: Pc::new(acc.pc),
                addr,
                kind: if acc.write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                dep,
                work_before: acc.work,
            });
            *cursor += 1;
            if *cursor == visit.accesses.len() {
                live.remove(idx);
            }
        }
    }
}

/// Creates the deterministic RNG used by every generator.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn visit(region: u64, n: u8) -> Visit {
        Visit::simple(
            RegionAddr::new(region),
            &(0..n).map(|o| (o, 0x400 + o as u64)).collect::<Vec<_>>(),
            3,
        )
    }

    #[test]
    fn window_one_preserves_order() {
        let mut t = Trace::new();
        let mut r = rng(1);
        Interleaver::new(1, 0.5).emit(vec![visit(1, 3), visit(2, 2)], &mut r, &mut t);
        let regions: Vec<u64> = t.iter().map(|a| a.addr.region().get()).collect();
        assert_eq!(regions, [1, 1, 1, 2, 2]);
    }

    #[test]
    fn interleaving_mixes_but_preserves_within_region_order() {
        let mut t = Trace::new();
        let mut r = rng(7);
        Interleaver::new(3, 0.5).emit(
            (0..20).map(|i| visit(i, 4)).collect::<Vec<_>>(),
            &mut r,
            &mut t,
        );
        assert_eq!(t.len(), 80);
        // Within each region the offsets must appear in order.
        use std::collections::HashMap;
        let mut last: HashMap<u64, u64> = HashMap::new();
        let mut interleaved = false;
        let mut prev_region = u64::MAX;
        for a in t.iter() {
            let region = a.addr.region().get();
            let off = a.addr.block().offset_in_region().get() as u64;
            if let Some(&l) = last.get(&region) {
                assert!(off > l, "within-visit order violated");
            }
            last.insert(region, off);
            if prev_region != u64::MAX && region != prev_region && last.contains_key(&region) {
                interleaved = true;
            }
            prev_region = region;
        }
        assert!(interleaved, "expected some interleaving at window 3");
    }

    #[test]
    fn dependence_marks_only_first_access_of_chained_visit() {
        let mut t = Trace::new();
        let mut r = rng(3);
        let v = visit(5, 3).chained();
        Interleaver::new(1, 0.0).emit(vec![v], &mut r, &mut t);
        let deps: Vec<Dependence> = t.iter().map(|a| a.dep).collect();
        assert_eq!(
            deps,
            [
                Dependence::OnPrevAccess,
                Dependence::Independent,
                Dependence::Independent
            ]
        );
    }

    #[test]
    fn scatter_is_deterministic_and_in_range() {
        let a = scatter(42, 7, 1000);
        let b = scatter(42, 7, 1000);
        assert_eq!(a, b);
        for i in 0..100 {
            assert!(scatter(i, 3, 64).get() < 64);
        }
    }

    #[test]
    fn empty_visits_are_skipped() {
        let mut t = Trace::new();
        let mut r = rng(1);
        let empty = Visit {
            region: RegionAddr::new(1),
            accesses: vec![],
            dependent: false,
        };
        Interleaver::new(2, 0.3).emit(vec![empty, visit(2, 2)], &mut r, &mut t);
        assert_eq!(t.len(), 2);
    }
}
