//! Property-based tests of the workload generators and interleaver.

use proptest::prelude::*;

use stems_trace::Trace;
use stems_types::RegionAddr;
use stems_workloads::build::{rng, Interleaver, Visit};
use stems_workloads::Workload;

fn visit(region: u64, len: u8) -> Visit {
    let parts: Vec<(u8, u64)> = (0..len.clamp(1, 31)).map(|o| (o, 0x400)).collect();
    Visit::simple(RegionAddr::new(region), &parts, 2)
}

proptest! {
    /// The interleaver is a permutation-with-order-preservation: the
    /// output contains exactly the input accesses, and each visit's
    /// accesses appear in their original relative order.
    #[test]
    fn interleaver_preserves_multiset_and_visit_order(
        lens in proptest::collection::vec(1u8..6, 1..40),
        window in 1usize..5,
        seed in 0u64..1000,
    ) {
        let visits: Vec<Visit> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| visit(i as u64, l))
            .collect();
        let expected: usize = visits.iter().map(|v| v.accesses.len()).sum();
        let mut trace = Trace::new();
        let mut r = rng(seed);
        Interleaver::new(window, 0.4).emit(visits, &mut r, &mut trace);
        prop_assert_eq!(trace.len(), expected);
        // Per-region offsets must be strictly increasing (original order).
        let mut last: std::collections::HashMap<u64, i32> =
            std::collections::HashMap::new();
        for a in trace.iter() {
            let region = a.addr.region().get();
            let off = a.addr.block().offset_in_region().get() as i32;
            let prev = last.insert(region, off).unwrap_or(-1);
            prop_assert!(off > prev, "visit-internal order violated");
        }
    }

    /// Every workload generator is a pure function of (scale, seed), and
    /// different seeds produce different traces.
    #[test]
    fn generators_are_deterministic(seed in 0u64..500) {
        for w in [Workload::Db2, Workload::Qry16, Workload::Sparse] {
            let a = w.generate_scaled(0.003, seed);
            let b = w.generate_scaled(0.003, seed);
            prop_assert_eq!(a.as_slice().len(), b.as_slice().len());
            prop_assert_eq!(a, b);
        }
    }

    /// Traces are well-formed: nonempty, block-aligned addresses, and
    /// dependence flags only on reads or writes that exist.
    #[test]
    fn traces_are_well_formed(seed in 0u64..200) {
        let t = Workload::Apache.generate_scaled(0.004, seed);
        prop_assert!(!t.is_empty());
        for a in t.iter() {
            prop_assert_eq!(a.addr.get() % 64, 0, "generators emit block-aligned addresses");
        }
        let stats = t.stats();
        prop_assert!(stats.read_fraction() > 0.5);
        prop_assert!(stats.unique_regions > 1);
    }
}

/// The footprint scaling knob actually scales footprints.
#[test]
fn scaling_shrinks_footprints() {
    let small = Workload::Ocean.generate_scaled(0.01, 1).stats();
    let large = Workload::Ocean.generate_scaled(0.05, 1).stats();
    assert!(large.unique_blocks > 3 * small.unique_blocks);
}
