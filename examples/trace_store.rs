//! Persistent trace store walkthrough: capture a workload trace to
//! disk, inspect it with streaming stats, then replay it through a
//! STeMS session in O(frame) memory and check the counters against the
//! in-memory run.
//!
//! ```sh
//! cargo run --release --example trace_store
//! ```

use stems::core::{Predictor, PrefetchConfig, Session};
use stems::memsim::SystemConfig;
use stems::trace::{TraceReader, TraceStats};
use stems::workloads::{capture_to_path, trace_file_name, Workload};

fn main() {
    let workload = Workload::Qry2;
    let (scale, seed) = (0.01, 42);
    let path = std::env::temp_dir().join(trace_file_name(workload));

    // 1. Capture: generate the workload and persist it frame-by-frame.
    //    Durability policy defaults to one fsync at the end of capture.
    let summary = capture_to_path(
        workload,
        scale,
        seed,
        &path,
        stems::trace::store::SyncPolicy::OnFinish,
    )
    .expect("capture");
    println!(
        "captured {workload} -> {} ({} records, {} frames)",
        path.display(),
        summary.records,
        summary.frames
    );

    // 2. Inspect: stats stream over the reader; the file is never
    //    materialized as one Vec.
    let mut reader = TraceReader::open(&path).expect("open store");
    let stats = TraceStats::from_reader(&mut reader).expect("stream stats");
    println!("stats: {stats}");

    // 3. Replay: feed the store through a session chunk-by-chunk. This
    //    reproduces the in-memory run exactly (see tests/replay.rs for
    //    the enforced oracle).
    let sys = SystemConfig::small();
    let cfg = PrefetchConfig::commercial();
    let mut session = Session::builder(&sys)
        .prefetch(&cfg)
        .predictor(Predictor::Stems)
        .build();
    let mut reader = TraceReader::open(&path).expect("reopen store");
    let fed = session.replay(&mut reader).expect("replay");
    let counters = session.finalize();
    println!(
        "replayed {fed} accesses: covered {}, uncovered {}, fetches {}",
        counters.covered, counters.uncovered, counters.fetches
    );

    let in_memory = Session::builder(&sys)
        .prefetch(&cfg)
        .predictor(Predictor::Stems)
        .run(&workload.generate_scaled(scale, seed));
    assert_eq!(counters, in_memory, "replay must match the in-memory run");
    println!("replay matches the in-memory run");

    std::fs::remove_file(&path).ok();
}
