//! The multiprocessor substrate: a lock-step 16-node run over the
//! directory protocol and 4x4 torus, sharding one workload across nodes.
//!
//! Used to validate the coherence-invalidation rates that the single-node
//! figure harnesses inject (DESIGN.md §2).
//!
//! ```sh
//! cargo run --release --example multiproc_coherence
//! ```

use stems::core::{PrefetchConfig, Session};
use stems::memsim::SystemConfig;
use stems::timing::run_lockstep;
use stems::trace::Trace;
use stems::workloads::Workload;

fn main() {
    let mut sys = SystemConfig::small();
    sys.nodes = 4; // 2x2 torus for a fast demonstration
    let workload = Workload::Db2;
    println!("sharding {workload} across {} nodes...", sys.nodes);
    // Same workload, different seeds: nodes share the hot buffer pool
    // (the generators draw template pages from the same region space).
    let traces: Vec<Trace> = (0..sys.nodes)
        .map(|n| workload.generate_scaled(0.02, 100 + n as u64))
        .collect();

    let report = run_lockstep(&sys, &traces);
    println!(
        "{:<6} {:>10} {:>8} {:>8} {:>9} {:>10} {:>8}",
        "node", "accesses", "L1", "L2", "memory", "c2c", "invals"
    );
    for (n, s) in report.nodes.iter().enumerate() {
        println!(
            "{:<6} {:>10} {:>8} {:>8} {:>9} {:>10} {:>8}",
            n,
            s.accesses,
            s.l1_hits,
            s.l2_hits,
            s.from_memory,
            s.from_remote_cache,
            s.invalidations_received
        );
    }
    let total = report.total();
    println!(
        "\ncache-to-cache transfers: {} ({:.1}% of off-chip misses)",
        total.from_remote_cache,
        100.0 * total.from_remote_cache as f64 / total.offchip().max(1) as f64
    );
    println!(
        "observed invalidation rate: {:.2e} per access (the single-node \
         harness injects {:.2e} for OLTP)",
        total.invalidation_rate(),
        workload.invalidation_rate()
    );

    // The single-node approximation of the same pressure: a session with
    // invalidation injection enabled at the workload's rate.
    let single = Session::builder(&sys)
        .prefetch(&PrefetchConfig::commercial())
        .invalidations(workload.invalidation_rate(), 7)
        .run(&traces[0]);
    println!(
        "single-node session injects {} invalidations over {} accesses \
         ({:.2e} per access)",
        single.invalidations,
        single.accesses,
        single.invalidations as f64 / single.accesses.max(1) as f64
    );
}
