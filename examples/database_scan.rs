//! The paper's motivating example (Figure 2): a non-clustered database
//! index scan, where page-visit order is arbitrary-but-repetitive
//! (temporal) and within-page accesses repeat (spatial).
//!
//! Builds the scan by hand from the public trace API — no workload
//! generator — then shows how each prediction mechanism sees it:
//! TMS needs a prior traversal, SMS generalizes the page layout to unseen
//! pages, and STeMS reconstructs the full interleaved order.
//!
//! ```sh
//! cargo run --release --example database_scan
//! ```

use stems::core::{Predictor, PrefetchConfig, Session};
use stems::memsim::SystemConfig;
use stems::trace::Trace;

/// Builds `passes` scans over the same shuffled buffer-pool pages: within
/// each page, the scan touches page id, lock bits, slot index, then data
/// (the Figure 2 sequence).
fn index_scan(pages: u64, passes: usize) -> Trace {
    let mut t = Trace::new();
    // "Each page was allocated to the next free location when read from
    // disk": visit order is a fixed pseudo-random permutation.
    let order: Vec<u64> = (0..pages).map(|i| (i * 2654435761) % pages).collect();
    for _ in 0..passes {
        for &p in &order {
            let base = (1 << 32) + p * 2048;
            t.read(0x400, base); // page id (trigger)
            t.read(0x404, base + 64); // lock bits
            t.read(0x408, base + 3 * 64); // slot indices
            t.read(0x40C, base + 9 * 64); // tuple data
            t.read(0x410, base + 10 * 64); // tuple data
        }
    }
    t
}

fn main() {
    let sys = SystemConfig::small();
    let cfg = PrefetchConfig::small();
    let run = |p: Predictor, trace: &Trace| {
        Session::builder(&sys)
            .prefetch(&cfg)
            .predictor(p)
            .run(trace)
    };

    let two_pass = index_scan(4096, 2);
    let baseline = run(Predictor::None, &two_pass);
    println!("index scan over 4096 scattered pages, two traversals");
    println!("baseline: {} off-chip read misses\n", baseline.uncovered);

    for (p, note) in [
        (Predictor::Tms, "replays the first traversal's miss order"),
        (
            Predictor::Sms,
            "learns the page layout, misses the page order",
        ),
        (
            Predictor::Stems,
            "reconstructs page order + layout together",
        ),
    ] {
        let c = run(p, &two_pass);
        println!(
            "{:<6} coverage {:>5.1}%  overprediction {:>5.1}%   <- {}",
            p.name(),
            100.0 * c.coverage_vs(baseline.uncovered),
            100.0 * c.overprediction_vs(baseline.uncovered),
            note
        );
    }

    // The compulsory case: pages never seen before. Only spatial
    // prediction (SMS, or STeMS's spatial-only streams) can help.
    let first_pass = index_scan(4096, 1);
    let base1 = run(Predictor::None, &first_pass);
    let tms1 = run(Predictor::Tms, &first_pass);
    let stems1 = run(Predictor::Stems, &first_pass);
    println!(
        "\nfirst-ever traversal (all compulsory): TMS covers {:.1}%, STeMS \
         covers {:.1}% via spatial-only streams",
        100.0 * tms1.coverage_vs(base1.uncovered),
        100.0 * stems1.coverage_vs(base1.uncovered),
    );
}
