//! Quickstart: run all four prefetchers on one workload and print a
//! Figure 9-style coverage comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stems::core::engine::{CoverageSim, NullPrefetcher};
use stems::core::{
    PrefetchConfig, SmsPrefetcher, StemsPrefetcher, StridePrefetcher, TmsPrefetcher,
};
use stems::harness::runner::system_config;
use stems::workloads::Workload;

fn main() {
    let scale = 0.1;
    let workload = Workload::Db2;
    let sys = system_config(scale);
    let cfg = PrefetchConfig::commercial();
    println!("generating {workload} trace (scale {scale})...");
    let trace = workload.generate_scaled(scale, 42);
    println!("  {}", trace.stats());

    let baseline = CoverageSim::new(&sys, &cfg, NullPrefetcher).run(&trace);
    println!(
        "baseline: {} off-chip read misses over {} accesses",
        baseline.uncovered, baseline.accesses
    );

    println!(
        "\n{:<8} {:>10} {:>14} {:>10}",
        "", "covered", "overpredicted", "fetches"
    );
    let stride = CoverageSim::new(&sys, &cfg, StridePrefetcher::new(&cfg)).run(&trace);
    let tms = CoverageSim::new(&sys, &cfg, TmsPrefetcher::new(&cfg)).run(&trace);
    let sms = CoverageSim::new(&sys, &cfg, SmsPrefetcher::new(&cfg)).run(&trace);
    let stems = CoverageSim::new(&sys, &cfg, StemsPrefetcher::new(&cfg)).run(&trace);
    for (name, c) in [
        ("stride", &stride),
        ("TMS", &tms),
        ("SMS", &sms),
        ("STeMS", &stems),
    ] {
        println!(
            "{:<8} {:>9.1}% {:>13.1}% {:>10}",
            name,
            100.0 * c.coverage_vs(baseline.uncovered),
            100.0 * c.overprediction_vs(baseline.uncovered),
            c.fetches
        );
    }
    println!(
        "\nSTeMS covers {:.1}% vs best underlying {:.1}% — the spatio-temporal \
         hybrid beats either component on OLTP (paper Section 5.5).",
        100.0 * stems.coverage_vs(baseline.uncovered),
        100.0
            * tms
                .coverage_vs(baseline.uncovered)
                .max(sms.coverage_vs(baseline.uncovered)),
    );
}
