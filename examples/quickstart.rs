//! Quickstart: run all four prefetchers on one workload and print a
//! Figure 9-style coverage comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stems::core::{Predictor, Session};
use stems::harness::runner::system_config;
use stems::workloads::Workload;

fn main() {
    let scale = 0.1;
    let workload = Workload::Db2;
    let sys = system_config(scale);
    let cfg = stems::core::PrefetchConfig::commercial();
    println!("generating {workload} trace (scale {scale})...");
    let trace = workload.generate_scaled(scale, 42);
    println!("  {}", trace.stats());

    // One builder per run: same system, same prefetch config, a
    // different predictor from the core registry each time.
    let run = |p: Predictor| {
        Session::builder(&sys)
            .prefetch(&cfg)
            .predictor(p)
            .run(&trace)
    };

    let baseline = run(Predictor::None);
    println!(
        "baseline: {} off-chip read misses over {} accesses",
        baseline.uncovered, baseline.accesses
    );

    println!(
        "\n{:<8} {:>10} {:>14} {:>10}",
        "", "covered", "overpredicted", "fetches"
    );
    let stride = run(Predictor::Stride);
    let tms = run(Predictor::Tms);
    let sms = run(Predictor::Sms);
    let stems = run(Predictor::Stems);
    for (p, c) in [
        (Predictor::Stride, &stride),
        (Predictor::Tms, &tms),
        (Predictor::Sms, &sms),
        (Predictor::Stems, &stems),
    ] {
        println!(
            "{:<8} {:>9.1}% {:>13.1}% {:>10}",
            p.name(),
            100.0 * c.coverage_vs(baseline.uncovered),
            100.0 * c.overprediction_vs(baseline.uncovered),
            c.fetches
        );
    }
    println!(
        "\nSTeMS covers {:.1}% vs best underlying {:.1}% — the spatio-temporal \
         hybrid beats either component on OLTP (paper Section 5.5).",
        100.0 * stems.coverage_vs(baseline.uncovered),
        100.0
            * tms
                .coverage_vs(baseline.uncovered)
                .max(sms.coverage_vs(baseline.uncovered)),
    );
}
