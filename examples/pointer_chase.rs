//! Pointer chasing and memory-level parallelism: why temporal streaming
//! gives multi-x speedups on em3d-like kernels (Section 5.6).
//!
//! A dependent-miss chain serializes at one off-chip latency per node;
//! a temporal stream fetches the chain's future nodes in parallel. This
//! example times both with the ROB-window timing model, attached to the
//! session via the `.timing(..)` builder stage.
//!
//! ```sh
//! cargo run --release --example pointer_chase
//! ```

use stems::core::{Predictor, PrefetchConfig, Session};
use stems::memsim::SystemConfig;
use stems::timing::{SessionTiming, TimingParams};
use stems::trace::{Access, Dependence, Trace};
use stems::types::{Addr, Pc};

/// A linked-list walk over `nodes` scattered nodes, repeated `laps`
/// times; every access depends on the previous one.
fn chase(nodes: u64, laps: usize) -> Trace {
    let mut t = Trace::new();
    for _ in 0..laps {
        for i in 0..nodes {
            let addr = Addr::new(((i * 7919 + 3) % (nodes * 4)) * (1 << 21));
            t.push(
                Access::read(Pc::new(0x600), addr)
                    .with_dep(Dependence::OnPrevAccess)
                    .with_work(16),
            );
        }
    }
    t
}

fn main() {
    let sys = SystemConfig::small();
    let cfg = PrefetchConfig::scientific();
    let params = TimingParams::from_system(&sys);
    let trace = chase(2048, 4);

    let timed = |p: Predictor| {
        Session::builder(&sys)
            .prefetch(&cfg)
            .predictor(p)
            .timing(&params)
            .run(&trace)
    };
    let base = timed(Predictor::None);
    let tms = timed(Predictor::Tms);
    let stems = timed(Predictor::Stems);

    println!("pointer chase: 2048-node list, 4 laps, every miss dependent");
    println!("{:<10} {:>12} {:>8} {:>10}", "", "cycles", "IPC", "speedup");
    for (name, r) in [("baseline", &base), ("TMS", &tms), ("STeMS", &stems)] {
        println!(
            "{:<10} {:>12} {:>8.3} {:>9.2}x",
            name,
            r.cycles,
            r.ipc(),
            r.speedup_over(&base)
        );
    }
    println!(
        "\nthe chain serializes at ~{} cycles per node in the baseline; the \
         stream's lookahead of {} overlaps that many fetches, so the chase \
         runs at roughly the off-chip latency divided by the lookahead.",
        params.offchip_latency, cfg.lookahead
    );
}
