//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use stems::analysis::Sequitur;
use stems::core::engine::{CoverageSim, NullPrefetcher};
use stems::core::util::{LruTable, OrderBuffer};
use stems::core::PrefetchConfig;
use stems::memsim::{Cache, CacheConfig, SystemConfig};
use stems::trace::{read_trace, write_trace, Access, AccessKind, Dependence, Trace};
use stems::types::{Addr, BlockAddr, BlockOffset, Delta, Pc, SpatialSequence};

proptest! {
    /// Sequitur always reproduces its input and keeps digrams unique.
    #[test]
    fn sequitur_round_trips(input in proptest::collection::vec(0u64..24, 0..400)) {
        let g = Sequitur::build(input.iter().copied());
        prop_assert_eq!(g.expand_root(), input);
        prop_assert!(g.digrams_are_unique());
    }

    /// The binary trace codec is lossless.
    #[test]
    fn trace_io_round_trips(
        records in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<bool>(), any::<bool>(), any::<u16>()),
            0..200,
        )
    ) {
        let trace: Trace = records
            .iter()
            .map(|&(pc, addr, write, dep, work)| Access {
                pc: Pc::new(pc),
                addr: Addr::new(addr),
                kind: if write { AccessKind::Write } else { AccessKind::Read },
                dep: if dep { Dependence::OnPrevAccess } else { Dependence::Independent },
                work_before: work,
            })
            .collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        prop_assert_eq!(read_trace(buf.as_slice()).unwrap(), trace);
    }

    /// A cache never exceeds capacity, and a just-accessed block is
    /// always resident afterwards.
    #[test]
    fn cache_capacity_and_residency(
        blocks in proptest::collection::vec(0u64..64, 1..300),
    ) {
        let mut c = Cache::new(&CacheConfig { size_bytes: 8 * 64, associativity: 2 });
        for &b in &blocks {
            c.access(BlockAddr::new(b), false);
            prop_assert!(c.contains(BlockAddr::new(b)));
            prop_assert!(c.occupancy() <= c.capacity());
        }
        prop_assert_eq!(c.hits() + c.misses(), blocks.len() as u64);
    }

    /// LRU tables never exceed capacity and always retain the most
    /// recently inserted key.
    #[test]
    fn lru_table_bounds(
        ops in proptest::collection::vec((0u32..40, any::<bool>()), 1..300),
    ) {
        let mut t: LruTable<u32, u32> = LruTable::new(8);
        for &(k, is_insert) in &ops {
            if is_insert {
                t.insert(k, k * 2);
                prop_assert!(t.contains(&k));
            } else {
                if let Some(v) = t.get(&k) {
                    prop_assert_eq!(*v, k * 2);
                }
            }
            prop_assert!(t.len() <= 8);
        }
    }

    /// An order buffer's lookup always returns the most recent position,
    /// and reads never cross the append cursor.
    #[test]
    fn order_buffer_lookup_is_most_recent(
        appends in proptest::collection::vec(0u64..16, 1..200),
    ) {
        let mut buf: OrderBuffer<BlockAddr> = OrderBuffer::new(32);
        let mut last_pos = std::collections::HashMap::new();
        for (i, &b) in appends.iter().enumerate() {
            let pos = buf.append(BlockAddr::new(b));
            prop_assert_eq!(pos, i as u64);
            last_pos.insert(b, pos);
        }
        for (&b, &pos) in &last_pos {
            let expect = (appends.len() as u64 - pos <= 32).then_some(pos);
            prop_assert_eq!(buf.lookup(BlockAddr::new(b)), expect);
        }
        prop_assert!(buf.read_from(appends.len() as u64, 8).is_empty());
    }

    /// Spatial sequences: offsets unique, order preserved, pattern
    /// consistent with contents, counters bounded.
    #[test]
    fn spatial_sequence_invariants(
        items in proptest::collection::vec((0u8..32, any::<u8>()), 0..64),
    ) {
        let mut s = SpatialSequence::new();
        let mut first_seen = Vec::new();
        for &(o, d) in &items {
            if s.push(BlockOffset::new(o), Delta::from(d)) {
                first_seen.push(o);
            }
        }
        let order: Vec<u8> = s.iter().map(|e| e.offset.get()).collect();
        prop_assert_eq!(order, first_seen);
        prop_assert_eq!(s.pattern().count() as usize, s.len());
        for e in s.iter() {
            prop_assert!(e.counter.get() <= 3);
            prop_assert!(s.pattern().contains(e.offset));
        }
    }

    /// The coverage engine's accounting identity: every read is satisfied
    /// exactly once.
    #[test]
    fn engine_accounting_identity(
        addrs in proptest::collection::vec(0u64..(1 << 22), 1..500),
    ) {
        let mut t = Trace::new();
        for &a in &addrs {
            t.read(0x400, a * 64);
        }
        let c = CoverageSim::new(
            &SystemConfig::small(),
            &PrefetchConfig::small(),
            NullPrefetcher,
        )
        .run(&t);
        prop_assert_eq!(c.reads, addrs.len() as u64);
        prop_assert_eq!(c.l1_hits + c.l2_hits + c.covered + c.uncovered, c.reads);
    }
}
