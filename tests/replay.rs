//! End-to-end oracle for the persistent trace store: generate →
//! persist → stream-replay must reproduce the in-memory run's counters
//! byte-for-byte, for every predictor, under both golden system
//! configurations (the default small geometry and the cache-pressure
//! geometry used by the engine's golden-counter tests).

use stems::core::session::{Predictor, Session};
use stems::core::PrefetchConfig;
use stems::memsim::{CacheConfig, SystemConfig};
use stems::trace::store::SyncPolicy;
use stems::trace::{Trace, TraceReader, TraceWriter};
use stems::workloads::Workload;

/// The two golden configurations: the small default geometry and the
/// 1KB-L1/16KB-L2 pressure geometry, each with its invalidation
/// injection, mirroring the engine's golden-counter tests.
fn golden_configs() -> [(SystemConfig, PrefetchConfig, (f64, u64)); 2] {
    let pressure = SystemConfig {
        l1: CacheConfig {
            size_bytes: 1024,
            associativity: 2,
        },
        l2: CacheConfig {
            size_bytes: 16 * 1024,
            associativity: 4,
        },
        ..SystemConfig::default()
    };
    [
        (SystemConfig::small(), PrefetchConfig::small(), (0.01, 42)),
        (pressure, PrefetchConfig::small(), (0.02, 7)),
    ]
}

fn persist(trace: &Trace, frame_capacity: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = TraceWriter::new(&mut buf)
        .expect("write header")
        .with_frame_capacity(frame_capacity);
    w.write_accesses(trace.as_slice()).expect("encode");
    w.finish().expect("finish");
    drop(w);
    buf
}

#[test]
fn replay_matches_in_memory_for_both_golden_configs() {
    let trace = Workload::Db2.generate_scaled(0.004, 11);
    assert!(trace.len() > 500, "need a non-trivial trace");
    let bytes = persist(&trace, 97);
    for (ci, (sys, cfg, inval)) in golden_configs().iter().enumerate() {
        for p in Predictor::all() {
            let expected = Session::builder(sys)
                .prefetch(cfg)
                .predictor(p)
                .invalidations(inval.0, inval.1)
                .run(&trace);
            let mut session = Session::builder(sys)
                .prefetch(cfg)
                .predictor(p)
                .invalidations(inval.0, inval.1)
                .build();
            let mut reader = TraceReader::new(bytes.as_slice()).expect("header");
            let fed = session.replay(&mut reader).expect("stream");
            assert_eq!(fed, trace.len() as u64);
            assert_eq!(
                session.finalize(),
                expected,
                "config {ci}, predictor {}: replayed counters drifted",
                p.name()
            );
        }
    }
}

#[test]
fn replay_streams_in_frame_sized_chunks() {
    // The O(chunk) claim, observed from the outside: every chunk the
    // reader yields is bounded by the writer's frame capacity, so a
    // replay loop never holds more than one frame of decoded records.
    let trace = Workload::Em3d.generate_scaled(0.002, 5);
    let capacity = 64;
    let bytes = persist(&trace, capacity);
    let mut reader = TraceReader::new(bytes.as_slice()).expect("header");
    let mut total = 0usize;
    let mut chunks = 0u64;
    while let Some(chunk) = reader.next_chunk().expect("stream") {
        assert!(chunk.len() <= capacity, "chunk exceeds the frame bound");
        total += chunk.len();
        chunks += 1;
    }
    assert_eq!(total, trace.len());
    assert_eq!(chunks, (trace.len() as u64).div_ceil(capacity as u64));
    assert_eq!(reader.frames_read(), chunks);
}

#[test]
fn file_backed_capture_replays_identically() {
    // Same oracle through the actual filesystem path: capture_to_path →
    // TraceReader::open, the route tracegen and the harness use.
    let (workload, scale, seed) = (Workload::Sparse, 0.002, 9);
    let path = std::env::temp_dir().join(format!("stems_replay_test_{}.stems", std::process::id()));
    let summary =
        stems::workloads::capture_to_path(workload, scale, seed, &path, SyncPolicy::EveryFrame)
            .expect("capture");
    let trace = workload.generate_scaled(scale, seed);
    assert_eq!(summary.records, trace.len() as u64);
    let (sys, cfg, inval) = &golden_configs()[0];
    let expected = Session::builder(sys)
        .prefetch(cfg)
        .predictor(Predictor::Stems)
        .invalidations(inval.0, inval.1)
        .run(&trace);
    let mut session = Session::builder(sys)
        .prefetch(cfg)
        .predictor(Predictor::Stems)
        .invalidations(inval.0, inval.1)
        .build();
    let mut reader = TraceReader::open(&path).expect("open");
    let fed = session.replay(&mut reader).expect("stream");
    std::fs::remove_file(&path).expect("cleanup");
    assert_eq!(fed, trace.len() as u64);
    assert_eq!(session.finalize(), expected);
}
