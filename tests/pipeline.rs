//! Cross-crate pipeline tests: generators -> trace I/O -> simulator ->
//! analyses, exercised together.

use stems::analysis::{classify, filter_trace, Sequitur};
use stems::core::engine::{CoverageSim, NullPrefetcher};
use stems::core::{PrefetchConfig, StemsPrefetcher};
use stems::memsim::SystemConfig;
use stems::trace::{read_trace, write_trace};
use stems::workloads::Workload;

#[test]
fn traces_round_trip_through_binary_io() {
    for w in Workload::all() {
        let trace = w.generate_scaled(0.004, 11);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("write");
        let back = read_trace(buf.as_slice()).expect("read");
        assert_eq!(back, trace, "{w}: binary round trip changed the trace");
    }
}

#[test]
fn replaying_a_stored_trace_reproduces_counters() {
    let trace = Workload::Qry16.generate_scaled(0.01, 5);
    let mut buf = Vec::new();
    write_trace(&mut buf, &trace).unwrap();
    let reloaded = read_trace(buf.as_slice()).unwrap();
    let sys = SystemConfig::small();
    let cfg = PrefetchConfig::small();
    let a = CoverageSim::new(&sys, &cfg, StemsPrefetcher::new(&cfg)).run(&trace);
    let b = CoverageSim::new(&sys, &cfg, StemsPrefetcher::new(&cfg)).run(&reloaded);
    assert_eq!(a, b, "simulation must be a pure function of the trace");
}

#[test]
fn filter_misses_are_a_subset_of_reads() {
    let trace = Workload::Apache.generate_scaled(0.01, 7);
    let sys = SystemConfig::small();
    let out = filter_trace(&trace, &sys);
    let reads = trace.iter().filter(|a| a.is_read()).count();
    assert!(out.misses.len() <= reads);
    assert!(!out.misses.is_empty());
    // Triggers are a subset of misses; every generation has >= 1 offset.
    let triggers = out.misses.iter().filter(|m| m.trigger).count();
    assert!(triggers > 0 && triggers <= out.misses.len());
    assert!(out.generations.iter().all(|g| !g.offsets.is_empty()));
}

#[test]
fn sequitur_grammar_reproduces_real_miss_sequences() {
    let trace = Workload::Db2.generate_scaled(0.01, 3);
    let sys = SystemConfig::small();
    let misses: Vec<u64> = filter_trace(&trace, &sys)
        .misses
        .iter()
        .map(|m| m.block.get())
        .collect();
    let grammar = Sequitur::build(misses.iter().copied());
    assert_eq!(grammar.expand_root(), misses);
    assert!(grammar.digrams_are_unique());
    let breakdown = classify(misses);
    assert_eq!(breakdown.total(), grammar.expand_root().len() as u64);
}

#[test]
fn deterministic_across_identical_runs() {
    let trace = Workload::Sparse.generate_scaled(0.01, 9);
    let sys = SystemConfig::small();
    let cfg = PrefetchConfig::small();
    let run = || {
        CoverageSim::new(&sys, &cfg, StemsPrefetcher::new(&cfg))
            .with_invalidations(1e-4, 77)
            .run(&trace)
    };
    assert_eq!(run(), run());
}

#[test]
fn coverage_conservation_invariant() {
    // covered + uncovered in a prefetched run stays close to the
    // unprefetched miss count (cache perturbation stays small).
    let trace = Workload::Zeus.generate_scaled(0.02, 13);
    let sys = SystemConfig::small();
    let cfg = PrefetchConfig::commercial();
    let base = CoverageSim::new(&sys, &cfg, NullPrefetcher).run(&trace);
    let stems = CoverageSim::new(&sys, &cfg, StemsPrefetcher::new(&cfg)).run(&trace);
    let total = (stems.covered + stems.uncovered) as f64;
    let drift = (total - base.uncovered as f64).abs() / base.uncovered as f64;
    assert!(
        drift < 0.10,
        "off-chip miss population drifted {:.1}% under prefetching",
        drift * 100.0
    );
}
